// Cross-engine consistency, driven by the optimizer registry: every
// registered engine must return a valid plan whose reported cost its plan
// actually achieves, and all engines that claim proven optimality on a
// shared input must agree on the optimal cost — the strongest
// internal-evidence check the suite has, swept across every scenario,
// topology family, send policy and constraint setting. Hard-coding the
// engine list is exactly what the registry exists to avoid: a newly
// registered engine is covered here automatically.

#include <gtest/gtest.h>

#include <memory>

#include "quest/core/engines.hpp"
#include "quest/workload/generators.hpp"
#include "quest/workload/scenarios.hpp"
#include "support/helpers.hpp"

namespace quest {
namespace {

using model::Instance;
using model::Send_policy;
using opt::Request;

/// Runs every registered engine on `request`; checks validity for all and
/// pairwise cost agreement among the provably exact results.
void expect_registry_engines_agree(Request request) {
  // One top-level seed so the stochastic engines are reproducible.
  request.seed = 20260729;

  double exact_reference = -1.0;
  std::string reference_engine;
  int proven = 0;
  for (const auto& name : core::engine_registry().names()) {
    const auto engine = core::make_optimizer(name);
    const auto result = engine->optimize(request);
    ASSERT_TRUE(result.plan.is_permutation_of(request.instance->size()))
        << name;
    EXPECT_FALSE(opt::stopped_early(result.termination)) << name;
    EXPECT_TRUE(test::costs_equal(
        result.cost, model::bottleneck_cost(*request.instance, result.plan,
                                            request.model)))
        << name << " reports a cost its plan does not achieve";
    if (request.precedence != nullptr) {
      EXPECT_TRUE(request.precedence->respects(result.plan.order())) << name;
    }
    if (!result.proven_optimal) continue;
    EXPECT_EQ(result.termination, opt::Termination::optimal) << name;
    ++proven;
    if (exact_reference < 0.0) {
      exact_reference = result.cost;
      reference_engine = name;
    } else {
      EXPECT_TRUE(test::costs_equal(result.cost, exact_reference))
          << name << " disagrees with " << reference_engine;
    }
    // No heuristic may beat a proven optimum — re-checked implicitly by
    // the agreement above, since every exact engine would be beaten too.
  }
  // bnb, bnb-lb, dp, frontier, exhaustive, exhaustive-bounded, portfolio
  // all prove optimality at these sizes.
  EXPECT_GE(proven, 7);
}

TEST(Cross_engine, ScenariosBothPolicies) {
  for (const auto& scenario :
       {workload::credit_screening(), workload::sky_survey(),
        workload::log_analytics()}) {
    for (const auto policy :
         {Send_policy::sequential, Send_policy::overlapped}) {
      Request request;
      request.instance = &scenario.instance;
      request.precedence = &scenario.precedence;
      request.model = model::Cost_model::independent(policy);
      expect_registry_engines_agree(request);
    }
  }
}

TEST(Cross_engine, TopologyFamilies) {
  for (std::uint64_t seed : {5u, 6u}) {
    Rng rng(seed * 2161);
    workload::Clustered_spec clustered;
    clustered.n = 8;
    workload::Euclidean_spec euclidean;
    euclidean.n = 8;
    workload::Bottleneck_tsp_spec btsp;
    btsp.n = 8;
    for (const Instance& instance :
         {workload::make_clustered(clustered, rng),
          workload::make_euclidean(euclidean, rng),
          workload::make_bottleneck_tsp(btsp, rng)}) {
      Request request;
      request.instance = &instance;
      expect_registry_engines_agree(request);
    }
  }
}

TEST(Cross_engine, ConstrainedSinkAndExpanding) {
  for (std::uint64_t seed : {11u, 12u, 13u}) {
    Rng rng(seed);
    workload::Uniform_spec spec;
    spec.n = 8;
    spec.selectivity_min = 0.4;
    spec.selectivity_max = 1.8;
    spec.sink_min = 0.2;
    spec.sink_max = 2.0;
    const Instance instance = workload::make_uniform(spec, rng);
    Rng dag_rng(seed * 7);
    const auto dag = workload::make_random_dag(8, 0.25, dag_rng);
    Request request;
    request.instance = &instance;
    request.precedence = &dag;
    expect_registry_engines_agree(request);
  }
}

// The acceptance sweep of the anytime-API redesign: on a generated
// 12-service instance the independent exact engines must agree (the same
// check the quest_cli CI smoke performs end to end).
TEST(Cross_engine, TwelveServiceExactAgreementViaRegistry) {
  const Instance instance = test::selective_instance(12, 2026);
  Request request;
  request.instance = &instance;
  double reference = -1.0;
  for (const char* name : {"bnb", "dp", "frontier"}) {
    const auto result = core::make_optimizer(name)->optimize(request);
    ASSERT_TRUE(result.proven_optimal) << name;
    if (reference < 0.0) {
      reference = result.cost;
    } else {
      EXPECT_TRUE(test::costs_equal(result.cost, reference)) << name;
    }
  }
}

// Acceptance sweep of the Cost_model redesign: under a correlated
// model, the independent-engine trio (bnb, dp, exhaustive — plus
// frontier) must agree on the optimal cost across >= 20 randomized
// instances, and the optimum must genuinely differ from the
// independent-model optimum often enough to prove the model is not a
// no-op.
TEST(Cross_engine, CorrelatedModelExactAgreement) {
  int divergences = 0;
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    const std::size_t n = 7;
    const Instance instance = test::selective_instance(n, seed * 17 + 5);
    const auto cost_model = model::Cost_model::correlated_seeded(
        n, 0.8, seed * 101 + 13,
        seed % 2 == 0 ? Send_policy::overlapped : Send_policy::sequential);

    Request request;
    request.instance = &instance;
    request.model = cost_model;

    double reference = -1.0;
    model::Plan reference_plan;
    for (const char* name : {"bnb", "bnb-lb", "dp", "exhaustive",
                             "frontier"}) {
      const auto result = core::make_optimizer(name)->optimize(request);
      ASSERT_TRUE(result.proven_optimal) << name << " seed " << seed;
      ASSERT_TRUE(result.plan.is_permutation_of(n)) << name;
      EXPECT_TRUE(test::costs_equal(
          result.cost,
          model::bottleneck_cost(instance, result.plan, cost_model)))
          << name << " seed " << seed;
      if (reference < 0.0) {
        reference = result.cost;
        reference_plan = result.plan;
      } else {
        EXPECT_TRUE(test::costs_equal(result.cost, reference))
            << name << " seed " << seed;
      }
    }

    // Compare against the same instance under independence: either the
    // optimal plan or its cost should differ for a strong correlation.
    Request independent_request;
    independent_request.instance = &instance;
    independent_request.model =
        model::Cost_model::independent(cost_model.policy());
    const auto independent =
        core::make_optimizer("exhaustive")->optimize(independent_request);
    if (!(reference_plan == independent.plan) ||
        !test::costs_equal(reference, independent.cost)) {
      ++divergences;
    }
  }
  EXPECT_GE(divergences, 5)
      << "a strength-0.8 correlation should reshape most optima";
}

}  // namespace
}  // namespace quest
