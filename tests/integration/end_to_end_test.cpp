// Cross-module integration: the full user journey — generate, analyze,
// optimize (several engines), persist, reload, re-optimize, simulate,
// execute on threads — with every hand-off checked.

#include <gtest/gtest.h>

#include "quest/core/branch_and_bound.hpp"
#include "quest/io/instance_io.hpp"
#include "quest/opt/dp.hpp"
#include "quest/opt/frontier.hpp"
#include "quest/opt/local_search.hpp"
#include "quest/runtime/choreography.hpp"
#include "quest/sim/simulator.hpp"
#include "quest/workload/analysis.hpp"
#include "quest/workload/generators.hpp"
#include "quest/workload/scenarios.hpp"
#include "support/helpers.hpp"

namespace quest {
namespace {

TEST(End_to_end, GenerateOptimizePersistReloadSimulate) {
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    // Generate.
    Rng rng(seed * 7727);
    workload::Clustered_spec spec;
    spec.n = 9;
    const auto instance = workload::make_clustered(spec, rng);
    Rng dag_rng(seed);
    const auto dag = workload::make_random_dag(9, 0.2, dag_rng);

    // Optimize with three independent exact engines.
    opt::Request request;
    request.instance = &instance;
    request.precedence = &dag;
    core::Bnb_optimizer bnb;
    opt::Dp_optimizer dp;
    opt::Frontier_optimizer frontier;
    const auto bnb_result = bnb.optimize(request);
    const auto dp_result = dp.optimize(request);
    const auto frontier_result = frontier.optimize(request);
    EXPECT_TRUE(test::costs_equal(bnb_result.cost, dp_result.cost));
    EXPECT_TRUE(test::costs_equal(bnb_result.cost, frontier_result.cost));

    // Persist + reload, then re-optimize: identical outcome.
    const std::string path = ::testing::TempDir() + "/quest_e2e_" +
                             std::to_string(seed) + ".json";
    io::save_instance(path, instance, &dag);
    const auto reloaded = io::load_instance(path);
    ASSERT_TRUE(reloaded.precedence.has_value());
    opt::Request again;
    again.instance = &reloaded.instance;
    again.precedence = &*reloaded.precedence;
    const auto re_result = bnb.optimize(again);
    EXPECT_TRUE(test::costs_equal(re_result.cost, bnb_result.cost));
    EXPECT_EQ(re_result.plan, bnb_result.plan);

    // Simulate the optimal plan: per-tuple time near the predicted cost.
    sim::Sim_config config;
    config.input_tuples = 15'000;
    const auto simulated =
        sim::simulate(reloaded.instance, re_result.plan, config);
    EXPECT_NEAR(simulated.per_tuple_time / re_result.cost, 1.0, 0.10)
        << "seed " << seed;
  }
}

TEST(End_to_end, PlanJsonRoundTripPreservesCost) {
  const auto scenario = workload::log_analytics();
  opt::Request request;
  request.instance = &scenario.instance;
  request.precedence = &scenario.precedence;
  core::Bnb_optimizer bnb;
  const auto result = bnb.optimize(request);

  const io::Json json = io::to_json(result.plan);
  const auto restored =
      io::plan_from_json(io::Json::parse(json.dump()),
                         scenario.instance.size());
  EXPECT_EQ(restored, result.plan);
  EXPECT_TRUE(test::costs_equal(
      model::bottleneck_cost(scenario.instance, restored), result.cost));
}

TEST(End_to_end, AnalysisPredictsSearchEffortOrdering) {
  // The profile's regime ordering must track actual node counts.
  Rng rng(55);
  workload::Uniform_spec easy;
  easy.n = 10;
  easy.selectivity_max = 0.5;
  workload::Uniform_spec hard;
  hard.n = 10;
  hard.selectivity_min = 0.9;
  const auto easy_instance = workload::make_uniform(easy, rng);
  const auto hard_instance = workload::make_uniform(hard, rng);
  EXPECT_EQ(workload::analyze(easy_instance).regime,
            workload::Hardness_regime::selective);
  EXPECT_EQ(workload::analyze(hard_instance).regime,
            workload::Hardness_regime::near_tsp);

  core::Bnb_optimizer bnb;
  opt::Request easy_request;
  easy_request.instance = &easy_instance;
  opt::Request hard_request;
  hard_request.instance = &hard_instance;
  EXPECT_LT(bnb.optimize(easy_request).stats.nodes_expanded,
            bnb.optimize(hard_request).stats.nodes_expanded);
}

TEST(End_to_end, HeuristicPolishThenExactAgreeOnScenario) {
  const auto scenario = workload::credit_screening();
  opt::Request request;
  request.instance = &scenario.instance;
  request.precedence = &scenario.precedence;

  opt::Local_search_optimizer polish;
  core::Bnb_optimizer bnb;
  const auto heuristic = polish.optimize(request);
  const auto exact = bnb.optimize(request);
  EXPECT_GE(heuristic.cost, exact.cost * (1.0 - test::cost_tolerance));
  // On this 6-service scenario the polished heuristic actually lands on
  // the optimum — document that with an assertion so regressions surface.
  EXPECT_TRUE(test::costs_equal(heuristic.cost, exact.cost));
}

TEST(End_to_end, SimulatorAndRuntimeAgreeOnRanking) {
  // Same two plans through both execution substrates: the faster plan
  // under the simulator must be the faster plan on the runtime executor.
  // The runtime runs on the virtual clock — the emulated timeline is
  // identical to the real-clock backend's but deterministic, so this
  // assertion holds under `ctest -j` on a loaded machine (it used to
  // flake there when sibling tests stole CPU from the deadline sleeps).
  const auto scenario = workload::sky_survey();
  opt::Request request;
  request.instance = &scenario.instance;
  request.precedence = &scenario.precedence;
  core::Bnb_optimizer bnb;
  const auto optimal = bnb.optimize(request).plan;

  // A clearly worse feasible plan: topological order (ignores costs).
  const model::Plan naive(scenario.precedence.topological_order());
  const double cost_gap =
      model::bottleneck_cost(scenario.instance, naive) /
      model::bottleneck_cost(scenario.instance, optimal);
  ASSERT_GT(cost_gap, 1.05) << "need a discriminating pair of plans";

  sim::Sim_config sim_config;
  sim_config.input_tuples = 5'000;
  const double sim_optimal =
      sim::simulate(scenario.instance, optimal, sim_config).makespan;
  const double sim_naive =
      sim::simulate(scenario.instance, naive, sim_config).makespan;
  EXPECT_LT(sim_optimal, sim_naive);

  runtime::Runtime_config rt_config;
  rt_config.input_tuples = 250;
  rt_config.time_scale_us = 30.0;
  rt_config.clock_mode = runtime::Clock_mode::virtual_time;
  const double rt_optimal =
      runtime::execute(scenario.instance, optimal, rt_config).wall_seconds;
  const double rt_naive =
      runtime::execute(scenario.instance, naive, rt_config).wall_seconds;
  EXPECT_LT(rt_optimal, rt_naive);
}

}  // namespace
}  // namespace quest
