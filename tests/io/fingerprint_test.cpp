// Instance fingerprinting: equal content -> equal fingerprint, any
// numeric or structural perturbation -> different fingerprint, and the
// precedence spellings "no graph" and "empty graph" agree. The serving
// layer's plan cache keys on these properties.

#include "quest/io/fingerprint.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "quest/constraints/precedence.hpp"
#include "quest/io/instance_io.hpp"
#include "quest/model/instance.hpp"
#include "support/helpers.hpp"

namespace quest {
namespace {

model::Instance perturbed(const model::Instance& base, std::size_t service,
                          double delta) {
  std::vector<model::Service> services = base.services();
  services[service].cost += delta;
  return model::Instance(std::move(services), base.transfer_matrix(),
                         base.sink_transfers(), base.name());
}

TEST(Fingerprint_test, EqualInstancesAgree) {
  const auto a = test::selective_instance(9, 42);
  const auto b = test::selective_instance(9, 42);
  ASSERT_EQ(a, b);
  EXPECT_EQ(io::fingerprint(a), io::fingerprint(b));
  EXPECT_EQ(io::fingerprint_hex(a), io::fingerprint_hex(b));
}

TEST(Fingerprint_test, NameDoesNotMatter) {
  const auto base = test::selective_instance(7, 3);
  const model::Instance renamed(base.services(), base.transfer_matrix(),
                                base.sink_transfers(), "another-name");
  EXPECT_EQ(io::fingerprint(base), io::fingerprint(renamed));
}

TEST(Fingerprint_test, CostPerturbationChangesIt) {
  const auto base = test::selective_instance(9, 42);
  EXPECT_NE(io::fingerprint(base), io::fingerprint(perturbed(base, 4, 1e-9)));
}

TEST(Fingerprint_test, DifferentSeedsDiffer) {
  EXPECT_NE(io::fingerprint(test::selective_instance(9, 1)),
            io::fingerprint(test::selective_instance(9, 2)));
}

TEST(Fingerprint_test, PrecedenceEdgesAreCovered) {
  const auto instance = test::selective_instance(6, 7);
  constraints::Precedence_graph empty(instance.size());
  constraints::Precedence_graph chain(instance.size());
  chain.add_edge(0, 1);
  chain.add_edge(1, 2);

  // No graph and an unconstrained graph are the same problem.
  EXPECT_EQ(io::fingerprint(instance, nullptr),
            io::fingerprint(instance, &empty));
  // Constraints change the feasible set, so they change the fingerprint.
  EXPECT_NE(io::fingerprint(instance, nullptr),
            io::fingerprint(instance, &chain));

  constraints::Precedence_graph reversed(instance.size());
  reversed.add_edge(1, 0);
  reversed.add_edge(2, 1);
  EXPECT_NE(io::fingerprint(instance, &chain),
            io::fingerprint(instance, &reversed));
}

TEST(Fingerprint_test, SurvivesAJsonRoundTrip) {
  // The cache must hit when a client re-sends the same document: the
  // serialized form must fingerprint identically after parsing.
  const auto base = test::sink_instance(8, 11);
  const io::Json document = io::to_json(base);
  const io::Instance_document parsed =
      io::instance_from_json(io::Json::parse(document.dump()));
  EXPECT_EQ(io::fingerprint(base), io::fingerprint(parsed.instance));
}

TEST(Fingerprint_test, HexFormIsStableWidth) {
  const auto instance = test::selective_instance(5, 19);
  const std::string hex = io::fingerprint_hex(instance);
  EXPECT_EQ(hex.size(), 16u);
  for (const char c : hex) {
    EXPECT_TRUE((c >= '0' && c <= '9') || (c >= 'a' && c <= 'f')) << hex;
  }
}

}  // namespace
}  // namespace quest
