#include <gtest/gtest.h>

#include "quest/io/instance_io.hpp"
#include "quest/workload/generators.hpp"
#include "quest/workload/scenarios.hpp"
#include "support/helpers.hpp"

namespace quest {
namespace {

using io::Json;
using model::Plan;

TEST(Instance_io_test, RoundTripsRandomInstances) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    const auto instance = test::sink_instance(7, seed);
    const Json json = io::to_json(instance);
    const auto restored = io::instance_from_json(json);
    EXPECT_TRUE(restored.instance == instance);
    EXPECT_FALSE(restored.precedence.has_value());
    // Through text as well.
    const auto reparsed =
        io::instance_from_json(Json::parse(json.dump(2)));
    EXPECT_TRUE(reparsed.instance == instance);
  }
}

TEST(Instance_io_test, RoundTripsPrecedence) {
  const auto scenario = workload::credit_screening();
  const Json json = io::to_json(scenario.instance, &scenario.precedence);
  const auto restored = io::instance_from_json(json);
  ASSERT_TRUE(restored.precedence.has_value());
  EXPECT_EQ(restored.precedence->edge_count(),
            scenario.precedence.edge_count());
  EXPECT_TRUE(restored.precedence->has_edge(0, 5));
  EXPECT_TRUE(restored.instance == scenario.instance);
}

TEST(Instance_io_test, OmitsZeroSinkAndEmptyPrecedence) {
  const auto instance = test::selective_instance(4, 2);
  constraints::Precedence_graph empty(4);
  const Json json = io::to_json(instance, &empty);
  EXPECT_EQ(json.find("sink_transfer"), nullptr);
  EXPECT_EQ(json.find("precedence"), nullptr);
}

TEST(Instance_io_test, PlanRoundTrip) {
  const Plan plan({3, 1, 0, 2});
  const Json json = io::to_json(plan);
  EXPECT_EQ(io::plan_from_json(json, 4), plan);
  EXPECT_THROW(io::plan_from_json(json, 3), Parse_error);  // id 3 invalid
  EXPECT_THROW(io::plan_from_json(Json::parse("[0,0]"), 2), Parse_error);
  EXPECT_THROW(io::plan_from_json(Json::parse("[0.5]"), 2), Parse_error);
}

TEST(Instance_io_test, FileRoundTrip) {
  const std::string path = ::testing::TempDir() + "/quest_instance.json";
  const auto scenario = workload::sky_survey();
  io::save_instance(path, scenario.instance, &scenario.precedence);
  const auto restored = io::load_instance(path);
  EXPECT_TRUE(restored.instance == scenario.instance);
  ASSERT_TRUE(restored.precedence.has_value());
  EXPECT_EQ(restored.precedence->edge_count(),
            scenario.precedence.edge_count());
}

TEST(Instance_io_test, RejectsMalformedDocuments) {
  // Missing services.
  EXPECT_THROW(io::instance_from_json(Json::parse(R"({"transfer": []})")),
               Parse_error);
  // Ragged matrix.
  EXPECT_THROW(io::instance_from_json(Json::parse(R"({
    "services": [{"cost":1,"selectivity":0.5},{"cost":1,"selectivity":0.5}],
    "transfer": [[0,1],[1]]
  })")),
               Parse_error);
  // Wrong row count.
  EXPECT_THROW(io::instance_from_json(Json::parse(R"({
    "services": [{"cost":1,"selectivity":0.5}],
    "transfer": [[0],[0]]
  })")),
               Parse_error);
  // Negative cost is data validation, surfaced as Parse_error.
  EXPECT_THROW(io::instance_from_json(Json::parse(R"({
    "services": [{"cost":-1,"selectivity":0.5}],
    "transfer": [[0]]
  })")),
               Parse_error);
  // Cyclic precedence.
  EXPECT_THROW(io::instance_from_json(Json::parse(R"({
    "services": [{"cost":1,"selectivity":0.5},{"cost":1,"selectivity":0.5}],
    "transfer": [[0,1],[1,0]],
    "precedence": [[0,1],[1,0]]
  })")),
               Parse_error);
  // Wrong sink length.
  EXPECT_THROW(io::instance_from_json(Json::parse(R"({
    "services": [{"cost":1,"selectivity":0.5}],
    "transfer": [[0]],
    "sink_transfer": [1, 2]
  })")),
               Parse_error);
}

}  // namespace
}  // namespace quest
