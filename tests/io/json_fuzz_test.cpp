// Fuzz-style robustness tests: the JSON parser must either parse or throw
// Parse_error — never crash, hang, or accept garbage silently.

#include <gtest/gtest.h>

#include <string>

#include "quest/common/rng.hpp"
#include "quest/io/instance_io.hpp"
#include "quest/io/json.hpp"

namespace quest {
namespace {

using io::Json;

/// Parse attempt that accepts both outcomes but surfaces crashes.
void try_parse(const std::string& text) {
  try {
    const Json parsed = Json::parse(text);
    // If it parsed, the dump must re-parse to the same value.
    EXPECT_EQ(Json::parse(parsed.dump()), parsed);
  } catch (const Parse_error&) {
    // fine — malformed input must throw exactly this
  }
}

TEST(Json_fuzz, RandomByteStrings) {
  Rng rng(20260612);
  const std::string alphabet = "{}[]\",:0123456789.eE+-truefalsn \n\t\\u";
  for (int trial = 0; trial < 3000; ++trial) {
    const auto length = static_cast<std::size_t>(rng.uniform_int(40));
    std::string text;
    for (std::size_t i = 0; i < length; ++i) {
      text.push_back(alphabet[rng.uniform_int(alphabet.size())]);
    }
    try_parse(text);
  }
}

TEST(Json_fuzz, MutatedValidDocuments) {
  const std::string valid = R"({"services": [{"name": "a", "cost": 1.5,
    "selectivity": 0.25}], "transfer": [[0]], "tags": [true, null, "x"]})";
  Rng rng(777);
  for (int trial = 0; trial < 3000; ++trial) {
    std::string mutated = valid;
    const int mutations = 1 + static_cast<int>(rng.uniform_int(3));
    for (int m = 0; m < mutations; ++m) {
      const auto pos = static_cast<std::size_t>(
          rng.uniform_int(mutated.size()));
      switch (rng.uniform_int(3)) {
        case 0:  // flip a character
          mutated[pos] = static_cast<char>('!' + rng.uniform_int(90));
          break;
        case 1:  // delete
          mutated.erase(pos, 1);
          break;
        default:  // duplicate
          mutated.insert(pos, 1, mutated[pos]);
          break;
      }
    }
    try_parse(mutated);
  }
}

TEST(Json_fuzz, MutatedInstanceDocumentsNeverCrashTheLoader) {
  // Instance deserialization layers model validation on top of parsing;
  // both failure modes must surface as Parse_error.
  const std::string valid = R"({
    "name": "fuzz",
    "services": [{"name": "a", "cost": 1, "selectivity": 0.5},
                 {"name": "b", "cost": 2, "selectivity": 0.9}],
    "transfer": [[0, 1.5], [0.5, 0]],
    "sink_transfer": [0.1, 0.2],
    "precedence": [[0, 1]]
  })";
  Rng rng(991);
  int loaded = 0;
  for (int trial = 0; trial < 2000; ++trial) {
    std::string mutated = valid;
    const auto pos =
        static_cast<std::size_t>(rng.uniform_int(mutated.size()));
    mutated[pos] = static_cast<char>('!' + rng.uniform_int(90));
    try {
      const auto document = io::instance_from_json(Json::parse(mutated));
      ++loaded;
      EXPECT_GE(document.instance.size(), 1u);
    } catch (const Parse_error&) {
      // expected for most mutations
    }
  }
  // Some mutations only touch names/whitespace and still load.
  EXPECT_GT(loaded, 0);
}

TEST(Json_fuzz, DeeplyNestedMixedStructures) {
  for (int depth : {10, 64, 127, 129, 150}) {
    std::string text;
    for (int i = 0; i < depth; ++i) text += R"({"k":[)";
    text += "1";
    for (int i = 0; i < depth; ++i) text += "]}";
    try_parse(text);  // must not overflow the stack either way
  }
}

}  // namespace
}  // namespace quest
