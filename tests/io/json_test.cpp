#include <gtest/gtest.h>

#include "quest/io/json.hpp"

namespace quest {
namespace {

using io::Json;

TEST(Json_test, ParsesScalars) {
  EXPECT_TRUE(Json::parse("null").is_null());
  EXPECT_TRUE(Json::parse("true").as_bool());
  EXPECT_FALSE(Json::parse("false").as_bool());
  EXPECT_DOUBLE_EQ(Json::parse("42").as_number(), 42.0);
  EXPECT_DOUBLE_EQ(Json::parse("-3.5e2").as_number(), -350.0);
  EXPECT_EQ(Json::parse("\"hi\"").as_string(), "hi");
}

TEST(Json_test, ParsesNestedStructures) {
  const Json doc = Json::parse(
      R"({"a": [1, 2, {"b": true}], "c": {"d": null}, "e": "x"})");
  EXPECT_TRUE(doc.is_object());
  EXPECT_DOUBLE_EQ(doc.at("a").at(0).as_number(), 1.0);
  EXPECT_TRUE(doc.at("a").at(2).at("b").as_bool());
  EXPECT_TRUE(doc.at("c").at("d").is_null());
  EXPECT_EQ(doc.at("e").as_string(), "x");
  EXPECT_EQ(doc.find("missing"), nullptr);
  EXPECT_THROW(doc.at("missing"), Parse_error);
  EXPECT_THROW(doc.at("a").at(3), Parse_error);
}

TEST(Json_test, StringEscapes) {
  const Json doc = Json::parse(R"("line\nbreak \"quoted\" tab\tA")");
  EXPECT_EQ(doc.as_string(), "line\nbreak \"quoted\" tab\tA");
  const Json unicode = Json::parse(R"("é€")");
  EXPECT_EQ(unicode.as_string(), "\xC3\xA9\xE2\x82\xAC");  // é€ in UTF-8
}

TEST(Json_test, RoundTripsThroughDump) {
  const char* documents[] = {
      "null",
      "true",
      R"({"n": 12, "values": [0.5, 1.25, -3], "label": "a\"b"})",
      R"([[1,2],[3,4],[]])",
      R"({"empty_object": {}, "empty_array": []})",
  };
  for (const char* text : documents) {
    const Json parsed = Json::parse(text);
    EXPECT_EQ(Json::parse(parsed.dump()), parsed) << text;
    EXPECT_EQ(Json::parse(parsed.dump(2)), parsed) << text;
  }
}

TEST(Json_test, DumpIsDeterministicAndOrdered) {
  Json doc;
  doc.set("zebra", 1);
  doc.set("alpha", 2);
  EXPECT_EQ(doc.dump(), R"({"zebra":1,"alpha":2})");
}

TEST(Json_test, NumberFormatting) {
  EXPECT_EQ(Json(3.0).dump(), "3");
  EXPECT_EQ(Json(-2.5).dump(), "-2.5");
  EXPECT_EQ(Json(0.1).dump(), "0.10000000000000001");  // exact round-trip
  EXPECT_DOUBLE_EQ(Json::parse(Json(0.1).dump()).as_number(), 0.1);
}

TEST(Json_test, BuilderHelpers) {
  Json array;
  array.push_back(1);
  array.push_back("two");
  EXPECT_EQ(array.as_array().size(), 2u);
  Json object;
  object.set("k", std::move(array));
  EXPECT_EQ(object.at("k").at(1).as_string(), "two");
  // push_back on an object / set on an array are type errors.
  EXPECT_THROW(object.push_back(1), Parse_error);
  Json arr2;
  arr2.push_back(0);
  EXPECT_THROW(arr2.set("k", 1), Parse_error);
}

TEST(Json_test, ParseErrors) {
  const char* bad[] = {
      "",           "{",          "[1,",       "tru",
      "\"unterminated", "{\"a\" 1}", "{\"a\":1,}",  "[1 2]",
      "01abc",      "nul",        "\"bad\\q\"", "{'a':1}",
      "1 2",        "--1",        "\"\\u12G4\"",
  };
  for (const char* text : bad) {
    EXPECT_THROW(Json::parse(text), Parse_error) << "'" << text << "'";
  }
}

TEST(Json_test, ParseErrorReportsLocation) {
  try {
    Json::parse("{\n  \"a\": oops\n}");
    FAIL() << "expected Parse_error";
  } catch (const Parse_error& e) {
    const std::string message = e.what();
    EXPECT_NE(message.find("line 2"), std::string::npos) << message;
  }
}

TEST(Json_test, DeepNestingIsRejected) {
  std::string deep;
  for (int i = 0; i < 200; ++i) deep += "[";
  for (int i = 0; i < 200; ++i) deep += "]";
  EXPECT_THROW(Json::parse(deep), Parse_error);
}

TEST(Json_test, ControlCharactersMustBeEscaped) {
  EXPECT_THROW(Json::parse("\"a\nb\""), Parse_error);
  EXPECT_THROW(Json::parse("\"\x01\""), Parse_error);
}

TEST(Json_test, FileRoundTrip) {
  const std::string path = ::testing::TempDir() + "/quest_json_test.json";
  io::write_file(path, "{\"x\": 1}");
  EXPECT_DOUBLE_EQ(Json::parse(io::read_file(path)).at("x").as_number(), 1.0);
  EXPECT_THROW(io::read_file("/nonexistent/dir/file.json"), Parse_error);
  EXPECT_THROW(io::write_file("/nonexistent/dir/file.json", "x"), Parse_error);
}

}  // namespace
}  // namespace quest
