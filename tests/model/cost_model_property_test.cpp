// Property tests of the Cost_model invariants the engines lean on
// (tests/support/property.hpp): pairwise interaction symmetry, factor
// clamping, order-independence of conditional selectivities (the property
// that makes subset DP and frontier search valid under the correlated
// structure), spec/key round trips through the public grammar, and the
// quantile cost profile's >= 1 scale floor.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

#include "quest/model/cost_model.hpp"
#include "quest/model/instance.hpp"
#include "support/generators.hpp"
#include "support/property.hpp"

namespace quest::model {
namespace {

using test::Property_config;

/// A random bound correlated model (seeded or explicit-matrix form) plus
/// the instance it is sized for.
struct Model_case {
  Instance instance;
  Cost_model model;
  std::uint64_t seed = 0;
};

Model_case gen_model_case(Rng& rng) {
  const std::size_t n = static_cast<std::size_t>(rng.uniform_int(2, 8));
  Model_case c{test::gen_instance(rng, n, 0.05, 0.95),
               Cost_model::independent(), rng()};
  if (rng.bernoulli(0.5)) {
    c.model = Cost_model::correlated_seeded(n, rng.uniform(0.1, 1.5),
                                            rng(), test::gen_policy(rng));
  } else {
    c.model = test::gen_matrix_spec(rng, n, 0.8).bind(n);
  }
  return c;
}

TEST(Cost_model_property, pairwise_interaction_is_symmetric) {
  test::check_property<Model_case>(
      "gamma(u,w) == gamma(w,u), observed through conditionals",
      Property_config{}, gen_model_case,
      [](const Model_case& c) -> ::testing::AssertionResult {
        Rng rng(c.seed);
        const std::size_t n = c.instance.size();
        const auto u = static_cast<Service_id>(rng.uniform_int(n));
        auto w = static_cast<Service_id>(rng.uniform_int(n));
        if (w == u) w = static_cast<Service_id>((w + 1) % n);
        const std::vector<Service_id> behind_w{w};
        const std::vector<Service_id> behind_u{u};
        const std::vector<Service_id> empty;
        const double ratio_u =
            c.model.conditional_selectivity(c.instance, u, behind_w) /
            c.model.conditional_selectivity(c.instance, u, empty);
        const double ratio_w =
            c.model.conditional_selectivity(c.instance, w, behind_u) /
            c.model.conditional_selectivity(c.instance, w, empty);
        return QUEST_PROP(std::fabs(ratio_u - ratio_w) <=
                          1e-12 * std::max(ratio_u, ratio_w))
               << "u=" << u << " w=" << w << ": " << ratio_u << " vs "
               << ratio_w;
      });
}

TEST(Cost_model_property, prefix_factors_respect_the_clamp) {
  test::check_property<Model_case>(
      "sigma(u|S)/sigma_u stays inside [lo^|S|, hi^|S|]",
      Property_config{}, gen_model_case,
      [](const Model_case& c) -> ::testing::AssertionResult {
        Rng rng(c.seed);
        const std::size_t n = c.instance.size();
        const Plan plan = test::gen_plan(rng, n);
        const std::vector<double> sigma =
            c.model.stage_selectivities(c.instance, plan);
        for (std::size_t p = 0; p < n; ++p) {
          const double marginal =
              c.instance.service(plan[p]).selectivity;
          const double ratio = sigma[p] / marginal;
          const double lo =
              std::pow(Cost_model::default_clamp_lo, double(p));
          const double hi =
              std::pow(Cost_model::default_clamp_hi, double(p));
          auto ok = QUEST_PROP(ratio >= lo * (1 - 1e-12) &&
                               ratio <= hi * (1 + 1e-12));
          if (!ok) return ok << "position " << p << " ratio " << ratio;
        }
        return ::testing::AssertionSuccess();
      });
}

TEST(Cost_model_property, conditionals_are_prefix_order_independent) {
  test::check_property<Model_case>(
      "sigma(u|S) does not depend on the order S was placed in",
      Property_config{}, gen_model_case,
      [](const Model_case& c) -> ::testing::AssertionResult {
        Rng rng(c.seed);
        const std::size_t n = c.instance.size();
        const auto u = static_cast<Service_id>(rng.uniform_int(n));
        std::vector<Service_id> placed;
        for (Service_id s = 0; s < n; ++s) {
          if (s != u && rng.bernoulli(0.5)) placed.push_back(s);
        }
        const double before =
            c.model.conditional_selectivity(c.instance, u, placed);
        rng.shuffle(placed);
        const double after =
            c.model.conditional_selectivity(c.instance, u, placed);
        // Tolerate reassociation of the factor product, nothing more.
        return QUEST_PROP(std::fabs(before - after) <=
                          1e-12 * std::max(before, after))
               << "u=" << u << ": " << before << " vs " << after
               << " over a " << placed.size() << "-service prefix";
      });
}

TEST(Cost_model_property, spec_key_round_trips_through_the_grammar) {
  test::check_property<std::uint64_t>(
      "parse(to_string(spec)).bind(n).key() == spec.bind(n).key()",
      Property_config{},
      [](Rng& rng) { return rng(); },
      [](const std::uint64_t& seed) -> ::testing::AssertionResult {
        Rng rng(seed);
        const std::size_t n = static_cast<std::size_t>(rng.uniform_int(2, 8));
        Cost_model_spec spec;
        switch (rng.uniform_int(std::uint64_t{3})) {
          case 0: spec.policy = test::gen_policy(rng); break;
          case 1: spec = test::gen_correlated_spec(rng); break;
          default: spec = test::gen_matrix_spec(rng, n, 0.7); break;
        }
        // Half the cases attach a quantile cost profile.
        if (rng.bernoulli(0.5)) {
          spec.objective =
              rng.bernoulli(0.5) ? Objective::p95 : Objective::p99;
          if (rng.bernoulli(0.5)) {
            spec.cost_tail = rng.bernoulli(0.5) ? Cost_tail::pareto
                                                : Cost_tail::lognormal;
            spec.cost_alpha = rng.uniform(1.1, 4.0);
            spec.cost_sigma = rng.uniform(0.1, 2.0);
          } else {
            spec.cost_scale.assign(n, 0.0);
            for (double& scale : spec.cost_scale) {
              scale = rng.uniform(1.0, 3.0);
            }
          }
        }
        const Cost_model bound = spec.bind(n);
        const Cost_model_spec reparsed = parse_cost_model_spec(
            spec.to_string(), to_string(spec.policy));
        const std::string key = bound.key();
        const std::string reparsed_key = reparsed.bind(n).key();
        auto ok = QUEST_PROP(key == reparsed_key);
        if (!ok) return ok << key << " vs " << reparsed_key;
        // Equal keys must mean semantically equal models.
        return QUEST_PROP(bound == reparsed.bind(n)) << "key " << key;
      });
}

TEST(Cost_model_property, quantile_scales_never_undercut_the_mean) {
  test::check_property<std::uint64_t>(
      "cost_scale(u) >= 1 under every quantile profile",
      Property_config{},
      [](Rng& rng) { return rng(); },
      [](const std::uint64_t& seed) -> ::testing::AssertionResult {
        Rng rng(seed);
        const std::size_t n = static_cast<std::size_t>(rng.uniform_int(2, 8));
        Rng instance_rng(rng());
        const Instance instance =
            test::gen_instance(instance_rng, n, 0.1, 0.9);
        const Objective objective =
            rng.bernoulli(0.5) ? Objective::p95 : Objective::p99;
        const Cost_model base = Cost_model::independent(test::gen_policy(rng));
        const Cost_model scaled =
            rng.bernoulli(0.5)
                ? base.with_cost_tail(objective, Cost_tail::pareto,
                                      rng.uniform(1.1, 5.0))
                : base.with_cost_tail(objective, Cost_tail::lognormal,
                                      rng.uniform(0.05, 2.0));
        for (Service_id u = 0; u < n; ++u) {
          auto ok = QUEST_PROP(scaled.cost_scale(u) >= 1.0 &&
                               scaled.effective_cost(instance, u) >=
                                   instance.service(u).cost);
          if (!ok) return ok << "service " << u << " scale "
                             << scaled.cost_scale(u);
        }
        return ::testing::AssertionSuccess();
      });
}

}  // namespace
}  // namespace quest::model
