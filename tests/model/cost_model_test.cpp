// The Cost_model value type: construction invariants (symmetrization,
// clamping), set-order independence of conditional selectivities,
// soundness of the attainable-selectivity bounds, key/equality semantics,
// spec parsing, and independent-model backward compatibility (every
// evaluator must be bit-identical to the model-free call).

#include "quest/model/cost_model.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "quest/model/cost.hpp"
#include "support/helpers.hpp"

namespace quest {
namespace {

using model::Cost_model;
using model::Cost_model_spec;
using model::Instance;
using model::Plan;
using model::Selectivity_structure;
using model::Send_policy;
using model::Service_id;

TEST(Cost_model_test, DefaultIsIndependentSequential) {
  const Cost_model cost_model;
  EXPECT_TRUE(cost_model.is_independent());
  EXPECT_EQ(cost_model.policy(), Send_policy::sequential);
  EXPECT_EQ(cost_model.structure(), Selectivity_structure::independent);
  EXPECT_EQ(cost_model.key(), "sequential/independent");
  EXPECT_EQ(cost_model.interaction(), nullptr);
}

TEST(Cost_model_test, IndependentModelIsBitIdenticalToModelFreeCalls) {
  const Instance instance = test::sink_instance(7, 3);
  const Plan plan = Plan::identity(7);
  // Exact double equality, not tolerance: the independent path must be
  // the *same arithmetic* as the defaulted (model-free) calls.
  EXPECT_EQ(model::bottleneck_cost(
                instance, plan,
                Cost_model::independent(Send_policy::sequential)),
            model::bottleneck_cost(instance, plan));
  for (const auto policy :
       {Send_policy::sequential, Send_policy::overlapped}) {
    const auto explicit_model = Cost_model::independent(policy);
    const auto breakdown =
        model::cost_breakdown(instance, plan, explicit_model);
    for (std::size_t p = 0; p < 7; ++p) {
      EXPECT_EQ(breakdown.stage_selectivities[p],
                instance.selectivity(plan[p]));
    }
    // The incremental evaluator, the free function and the breakdown all
    // produce the identical double.
    model::Partial_plan_evaluator eval(instance, explicit_model);
    for (const auto id : plan) eval.append(id);
    EXPECT_EQ(eval.complete_cost(),
              model::bottleneck_cost(instance, plan, explicit_model));
    EXPECT_EQ(breakdown.cost,
              model::bottleneck_cost(instance, plan, explicit_model));
  }
}

TEST(Cost_model_test, CorrelatedMatrixIsSymmetrizedAndClamped) {
  Matrix<double> gamma = Matrix<double>::square(3, 1.0);
  gamma(0, 1) = 9.0;  // above the default clamp-hi of 4
  gamma(1, 0) = 1.0;  // asymmetric on purpose: average is 5, clamped to 4
  gamma(0, 2) = 0.1;  // average with 1.0 -> 0.55
  const auto cost_model = Cost_model::correlated(std::move(gamma));
  const Matrix<double>& stored = *cost_model.interaction();
  EXPECT_DOUBLE_EQ(stored(0, 1), Cost_model::default_clamp_hi);
  EXPECT_DOUBLE_EQ(stored(1, 0), Cost_model::default_clamp_hi);
  EXPECT_DOUBLE_EQ(stored(0, 2), 0.55);
  EXPECT_DOUBLE_EQ(stored(2, 0), 0.55);
  for (std::size_t i = 0; i < 3; ++i) EXPECT_DOUBLE_EQ(stored(i, i), 1.0);
}

TEST(Cost_model_test, RejectsInvalidConstruction) {
  EXPECT_THROW(Cost_model::correlated(Matrix<double>(2, 3, 1.0)),
               Precondition_error);
  Matrix<double> negative = Matrix<double>::square(2, -1.0);
  EXPECT_THROW(Cost_model::correlated(std::move(negative)),
               Precondition_error);
  EXPECT_THROW(Cost_model::correlated_seeded(0, 0.5, 1),
               Precondition_error);
  EXPECT_THROW(Cost_model::correlated_seeded(4, -0.5, 1),
               Precondition_error);
  EXPECT_THROW(
      Cost_model::correlated_seeded(4, 0.5, 1, Send_policy::sequential,
                                    2.0, 1.0),  // lo > hi
      Precondition_error);
}

TEST(Cost_model_test, ConditionalSelectivityDependsOnlyOnTheSet) {
  const std::size_t n = 8;
  const Instance instance = test::selective_instance(n, 11);
  const auto cost_model = Cost_model::correlated_seeded(n, 0.7, 5);
  Rng rng(99);
  for (int trial = 0; trial < 50; ++trial) {
    auto perm = rng.permutation(n);
    const std::size_t k = 1 + rng.uniform_int(n - 1);
    std::vector<Service_id> placed;
    for (std::size_t i = 0; i < k; ++i) {
      placed.push_back(static_cast<Service_id>(perm[i]));
    }
    const Service_id u = static_cast<Service_id>(perm[k]);
    const double direct =
        cost_model.conditional_selectivity(instance, u, placed);
    // Any permutation of the same set yields the same value (within FP
    // association tolerance), and the mask overload agrees.
    std::vector<Service_id> shuffled = placed;
    rng.shuffle(shuffled);
    EXPECT_TRUE(test::costs_equal(
        direct, cost_model.conditional_selectivity(instance, u, shuffled)));
    std::uint64_t mask = 0;
    for (const Service_id w : placed) mask |= std::uint64_t{1} << w;
    EXPECT_TRUE(test::costs_equal(
        direct, cost_model.conditional_selectivity(instance, u, mask)));
  }
}

TEST(Cost_model_test, PrefixProductIsOrderIndependent) {
  // The property the subset DP relies on: the product of conditional
  // selectivities over a set does not depend on the placement order.
  const std::size_t n = 7;
  const Instance instance = test::selective_instance(n, 4);
  const auto cost_model = Cost_model::correlated_seeded(n, 1.0, 17);
  Rng rng(5);
  for (int trial = 0; trial < 30; ++trial) {
    auto order = rng.permutation(n);
    auto reordered = order;
    rng.shuffle(reordered);
    auto product_along = [&](const std::vector<std::size_t>& sequence) {
      double product = 1.0;
      std::vector<Service_id> placed;
      for (const std::size_t id : sequence) {
        product *= cost_model.conditional_selectivity(
            instance, static_cast<Service_id>(id), placed);
        placed.push_back(static_cast<Service_id>(id));
      }
      return product;
    };
    EXPECT_TRUE(
        test::costs_equal(product_along(order), product_along(reordered)));
  }
}

TEST(Cost_model_test, SelectivityBoundsAreSound) {
  const std::size_t n = 8;
  const Instance instance = test::expanding_instance(n, 21);
  const auto cost_model = Cost_model::correlated_seeded(n, 0.9, 2);
  const auto bounds = cost_model.selectivity_bounds(instance);
  ASSERT_TRUE(bounds.has_value());
  Rng rng(7);
  for (int trial = 0; trial < 200; ++trial) {
    const auto perm = rng.permutation(n);
    const std::size_t k = rng.uniform_int(n);
    std::vector<Service_id> placed;
    for (std::size_t i = 0; i < k; ++i) {
      placed.push_back(static_cast<Service_id>(perm[i]));
    }
    const Service_id u = static_cast<Service_id>(perm[k]);
    const double sigma =
        cost_model.conditional_selectivity(instance, u, placed);
    EXPECT_LE(sigma, bounds->hi[u] * (1.0 + test::cost_tolerance));
    EXPECT_GE(sigma, bounds->lo[u] * (1.0 - test::cost_tolerance));
  }
}

TEST(Cost_model_test, OverflowingBoundsAreReportedUnsound) {
  // 40 services with huge mutual amplification: the hi products overflow
  // to infinity, so the model must flag the upper bounds unsound — while
  // the lower bounds stay finite and usable for admissible pruning.
  const std::size_t n = 40;
  Matrix<double> gamma = Matrix<double>::square(n, 1e300);
  const auto cost_model = Cost_model::correlated(
      std::move(gamma), Send_policy::sequential, 0.0, 1e300);
  Rng rng(1);
  workload::Uniform_spec spec;
  spec.n = n;
  const Instance instance = workload::make_uniform(spec, rng);
  const auto bounds = cost_model.selectivity_bounds(instance);
  ASSERT_TRUE(bounds.has_value());
  EXPECT_FALSE(bounds->hi_sound);
  for (std::size_t u = 0; u < n; ++u) {
    EXPECT_TRUE(std::isfinite(bounds->lo[u]));
  }
}

TEST(Cost_model_test, ValidateForRejectsSizeMismatch) {
  const Instance instance = test::selective_instance(5, 1);
  const auto cost_model = Cost_model::correlated_seeded(6, 0.5, 1);
  EXPECT_THROW(cost_model.validate_for(instance), Precondition_error);
  EXPECT_THROW(model::Partial_plan_evaluator(instance, cost_model),
               Precondition_error);
}

TEST(Cost_model_test, KeysAndEqualityTrackParameters) {
  const auto a = Cost_model::correlated_seeded(6, 0.5, 7);
  const auto b = Cost_model::correlated_seeded(6, 0.5, 7);
  const auto c = Cost_model::correlated_seeded(6, 0.5, 8);
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.key(), b.key());
  EXPECT_NE(a.key(), c.key());
  EXPECT_FALSE(a == c);
  EXPECT_NE(a.key(), Cost_model().key());
  EXPECT_NE(a.key(), a.with_policy(Send_policy::overlapped).key());
  EXPECT_EQ(a.with_policy(Send_policy::overlapped).structure(),
            Selectivity_structure::correlated);
  // Explicit matrices key by content hash.
  Matrix<double> g1 = Matrix<double>::square(3, 1.0);
  g1(0, 1) = g1(1, 0) = 2.0;
  Matrix<double> g2 = g1;
  const auto m1 = Cost_model::correlated(std::move(g1));
  const auto m2 = Cost_model::correlated(std::move(g2));
  EXPECT_EQ(m1, m2);
  EXPECT_EQ(m1.key(), m2.key());
}

TEST(Cost_model_spec_test, ParsesAndBinds) {
  const auto independent = model::parse_cost_model_spec("independent");
  EXPECT_EQ(independent.structure, Selectivity_structure::independent);
  EXPECT_EQ(independent.policy, Send_policy::sequential);
  EXPECT_TRUE(independent.bind(5).is_independent());

  const auto correlated = model::parse_cost_model_spec(
      "correlated:strength=0.75,seed=42,clamp-lo=0.5,clamp-hi=2",
      "overlapped");
  EXPECT_EQ(correlated.structure, Selectivity_structure::correlated);
  EXPECT_EQ(correlated.policy, Send_policy::overlapped);
  EXPECT_DOUBLE_EQ(correlated.strength, 0.75);
  EXPECT_EQ(correlated.seed, 42u);
  const auto bound = correlated.bind(6);
  EXPECT_FALSE(bound.is_independent());
  EXPECT_EQ(bound, Cost_model::correlated_seeded(
                       6, 0.75, 42, Send_policy::overlapped, 0.5, 2.0));
  // Canonical round trip.
  EXPECT_EQ(model::parse_cost_model_spec(correlated.to_string(),
                                         "overlapped"),
            correlated);
}

TEST(Cost_model_spec_test, RejectsMalformedSpecs) {
  EXPECT_THROW(model::parse_cost_model_spec("gaussian"), Parse_error);
  EXPECT_THROW(model::parse_cost_model_spec("independent:strength=1"),
               Parse_error);
  EXPECT_THROW(model::parse_cost_model_spec("correlated:"), Parse_error);
  EXPECT_THROW(model::parse_cost_model_spec("correlated:strength"),
               Parse_error);
  EXPECT_THROW(model::parse_cost_model_spec("correlated:widgets=2"),
               Parse_error);
  EXPECT_THROW(model::parse_cost_model_spec("correlated:strength=-1"),
               Parse_error);
  EXPECT_THROW(model::parse_cost_model_spec("correlated:strength=1,"),
               Parse_error);
  EXPECT_THROW(
      model::parse_cost_model_spec("correlated:strength=1,strength=2"),
      Parse_error);
  EXPECT_THROW(
      model::parse_cost_model_spec("correlated:clamp-lo=3,clamp-hi=2"),
      Parse_error);
  EXPECT_THROW(model::parse_cost_model_spec("independent", "async"),
               Parse_error);
}

TEST(Cost_model_test, StageSelectivitiesFollowThePlan) {
  const std::size_t n = 5;
  const Instance instance = test::selective_instance(n, 8);
  const auto cost_model = Cost_model::correlated_seeded(n, 0.6, 3);
  const Plan plan({3, 0, 4, 1, 2});
  const auto sigmas = cost_model.stage_selectivities(instance, plan);
  ASSERT_EQ(sigmas.size(), n);
  EXPECT_DOUBLE_EQ(sigmas[0], instance.selectivity(3));
  std::vector<Service_id> placed;
  for (std::size_t p = 0; p < n; ++p) {
    EXPECT_DOUBLE_EQ(sigmas[p], cost_model.conditional_selectivity(
                                    instance, plan[p], placed));
    placed.push_back(plan[p]);
  }
  // And the evaluator agrees with bottleneck_cost through the model.
  model::Partial_plan_evaluator eval(instance, cost_model);
  for (const Service_id id : plan) eval.append(id);
  EXPECT_TRUE(test::costs_equal(
      eval.complete_cost(),
      model::bottleneck_cost(instance, plan, cost_model)));
}

}  // namespace
}  // namespace quest
