// Hand-computed checks of the bottleneck cost metric (Eq. 1) plus
// randomized consistency properties.

#include <gtest/gtest.h>

#include "quest/model/cost.hpp"
#include "support/helpers.hpp"

namespace quest {
namespace {

using model::Instance;
using model::Plan;
using model::Send_policy;
using model::Service;
using model::stage_term;

TEST(Stage_term_test, Policies) {
  EXPECT_DOUBLE_EQ(stage_term(2.0, 0.5, 4.0, Send_policy::sequential), 4.0);
  EXPECT_DOUBLE_EQ(stage_term(2.0, 0.5, 4.0, Send_policy::overlapped), 2.0);
  EXPECT_DOUBLE_EQ(stage_term(1.0, 0.5, 8.0, Send_policy::overlapped), 4.0);
  EXPECT_DOUBLE_EQ(stage_term(3.0, 0.0, 100.0, Send_policy::sequential), 3.0);
}

Instance two_service_instance() {
  // a: c=1, sigma=0.5; b: c=10, sigma=0.5; t(a,b)=2, t(b,a)=4.
  Matrix<double> t = Matrix<double>::square(2, 0.0);
  t(0, 1) = 2.0;
  t(1, 0) = 4.0;
  return Instance({{1.0, 0.5, "a"}, {10.0, 0.5, "b"}}, std::move(t));
}

TEST(Bottleneck_cost_test, HandComputedTwoServices) {
  const Instance instance = two_service_instance();
  // a->b: max(1 + 0.5*2, 0.5 * 10) = max(2, 5) = 5.
  EXPECT_DOUBLE_EQ(model::bottleneck_cost(instance, Plan({0, 1})), 5.0);
  // b->a: max(10 + 0.5*4, 0.5 * 1) = 12.
  EXPECT_DOUBLE_EQ(model::bottleneck_cost(instance, Plan({1, 0})), 12.0);
}

TEST(Bottleneck_cost_test, HandComputedOverlapped) {
  const Instance instance = two_service_instance();
  // a->b: max(max(1, 0.5*2), 0.5 * max(10, 0)) = 5.
  EXPECT_DOUBLE_EQ(
      model::bottleneck_cost(
          instance, Plan({0, 1}),
          model::Cost_model::independent(Send_policy::overlapped)),
      5.0);
  // b->a: max(max(10, 0.5*4), 0.5*max(1,0)) = 10.
  EXPECT_DOUBLE_EQ(
      model::bottleneck_cost(
          instance, Plan({1, 0}),
          model::Cost_model::independent(Send_policy::overlapped)),
      10.0);
}

TEST(Bottleneck_cost_test, SinkTransferChargesLastService) {
  Matrix<double> t = Matrix<double>::square(2, 0.0);
  t(0, 1) = 1.0;
  t(1, 0) = 1.0;
  const Instance instance({{1.0, 0.5, "a"}, {1.0, 0.5, "b"}}, std::move(t),
                          {10.0, 6.0});
  // a->b: max(1 + 0.5, 0.5 * (1 + 0.5*6)) = max(1.5, 2) = 2.
  EXPECT_DOUBLE_EQ(model::bottleneck_cost(instance, Plan({0, 1})), 2.0);
}

TEST(Bottleneck_cost_test, SelectivityProductsAttenuate) {
  // Three selective services in a chain with unit transfers.
  Matrix<double> t = Matrix<double>::square(3, 0.0);
  for (std::size_t i = 0; i < 3; ++i) {
    for (std::size_t j = 0; j < 3; ++j) {
      if (i != j) t(i, j) = 1.0;
    }
  }
  const Instance instance(
      {{4.0, 0.5, "a"}, {4.0, 0.5, "b"}, {4.0, 0.5, "c"}}, std::move(t));
  // 0,1,2: terms 4.5, 0.5*4.5, 0.25*4 = 4.5, 2.25, 1.0 -> 4.5.
  EXPECT_DOUBLE_EQ(model::bottleneck_cost(instance, Plan({0, 1, 2})), 4.5);
}

TEST(Bottleneck_cost_test, ExpandingServiceAmplifiesDownstream) {
  Matrix<double> t = Matrix<double>::square(2, 0.0);
  t(0, 1) = 1.0;
  t(1, 0) = 1.0;
  const Instance instance({{1.0, 3.0, "expand"}, {2.0, 1.0, "sink"}},
                          std::move(t));
  // expand->sink: max(1 + 3*1, 3*2) = 6.
  EXPECT_DOUBLE_EQ(model::bottleneck_cost(instance, Plan({0, 1})), 6.0);
}

TEST(Bottleneck_cost_test, SingleService) {
  const Instance plain({{2.0, 0.7, "x"}}, Matrix<double>::square(1, 0.0));
  EXPECT_DOUBLE_EQ(model::bottleneck_cost(plain, Plan({0})), 2.0);
  const Instance with_sink({{2.0, 0.7, "x"}}, Matrix<double>::square(1, 0.0),
                           {3.0});
  EXPECT_DOUBLE_EQ(model::bottleneck_cost(with_sink, Plan({0})),
                   2.0 + 0.7 * 3.0);
}

TEST(Bottleneck_cost_test, RequiresCompletePlan) {
  const Instance instance = two_service_instance();
  EXPECT_THROW(model::bottleneck_cost(instance, Plan({0})),
               Precondition_error);
  EXPECT_THROW(model::bottleneck_cost(instance, Plan({0, 0})),
               Precondition_error);
}

TEST(Cost_breakdown_test, FieldsAreConsistent) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    const Instance instance = test::sink_instance(7, seed);
    Rng rng(seed);
    const auto perm = rng.permutation(7);
    Plan plan;
    for (const auto id : perm) {
      plan.append(static_cast<model::Service_id>(id));
    }
    const auto breakdown = model::cost_breakdown(instance, plan);
    EXPECT_TRUE(test::costs_equal(breakdown.cost,
                                  model::bottleneck_cost(instance, plan)));
    ASSERT_EQ(breakdown.stage_costs.size(), 7u);
    ASSERT_EQ(breakdown.input_fractions.size(), 7u);
    EXPECT_DOUBLE_EQ(breakdown.input_fractions[0], 1.0);
    double max_stage = 0.0;
    for (const double c : breakdown.stage_costs) {
      max_stage = std::max(max_stage, c);
    }
    EXPECT_TRUE(test::costs_equal(breakdown.cost, max_stage));
    EXPECT_TRUE(test::costs_equal(
        breakdown.stage_costs[breakdown.bottleneck_position], breakdown.cost));
  }
}

TEST(Cost_breakdown_test, BottleneckTieKeepsEarliestPosition) {
  // Two identical stages: both terms equal, position 0 must win.
  Matrix<double> t = Matrix<double>::square(2, 0.0);
  t(0, 1) = 1.0;
  t(1, 0) = 1.0;
  const Instance instance({{1.0, 1.0, "a"}, {2.0, 1.0, "b"}}, std::move(t));
  // a->b: terms [1 + 1, 2 + 0] = [2, 2].
  const auto breakdown = model::cost_breakdown(instance, Plan({0, 1}));
  EXPECT_EQ(breakdown.bottleneck_position, 0u);
}

TEST(Partial_epsilon_test, PrefixEpsilonNeverExceedsFullCost) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    const Instance instance = test::expanding_instance(8, seed);
    Rng rng(seed * 3);
    const auto perm = rng.permutation(8);
    Plan full;
    for (const auto id : perm) {
      full.append(static_cast<model::Service_id>(id));
    }
    const double cost = model::bottleneck_cost(instance, full);
    Plan prefix;
    for (const auto id : perm) {
      prefix.append(static_cast<model::Service_id>(id));
      EXPECT_LE(model::partial_epsilon(instance, prefix),
                cost * (1.0 + test::cost_tolerance) + 1e-12);
    }
  }
}

}  // namespace
}  // namespace quest
