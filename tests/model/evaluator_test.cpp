// The incremental Partial_plan_evaluator must agree with from-scratch
// recomputation under arbitrary append/pop interleavings.

#include <gtest/gtest.h>

#include <vector>

#include "quest/model/cost.hpp"
#include "support/helpers.hpp"

namespace quest {
namespace {

using model::Instance;
using model::Partial_plan_evaluator;
using model::Plan;
using model::Send_policy;
using model::Service_id;

TEST(Evaluator_test, MatchesRecomputationUnderFuzzedMutation) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    const std::size_t n = 9;
    const Instance instance = test::sink_instance(n, seed);
    for (const auto policy :
         {Send_policy::sequential, Send_policy::overlapped}) {
      const model::Cost_model cost_model = model::Cost_model::independent(policy);
      Partial_plan_evaluator eval(instance, cost_model);
      Rng rng(seed * 977);
      std::vector<Service_id> mirror;
      for (int step = 0; step < 400; ++step) {
        const bool can_append = mirror.size() < n;
        const bool do_append =
            can_append && (mirror.empty() || rng.bernoulli(0.6));
        if (do_append) {
          Service_id pick;
          do {
            pick = static_cast<Service_id>(rng.uniform_int(n));
          } while (eval.contains(pick));
          eval.append(pick);
          mirror.push_back(pick);
        } else if (!mirror.empty()) {
          eval.pop();
          mirror.pop_back();
        }
        ASSERT_EQ(eval.size(), mirror.size());
        EXPECT_TRUE(test::costs_equal(
            eval.epsilon(),
            model::partial_epsilon(instance, Plan(mirror), cost_model)));
        double product = 1.0;
        for (const Service_id id : mirror) {
          product *= instance.selectivity(id);
        }
        EXPECT_TRUE(test::costs_equal(eval.product_through(), product));
        if (eval.full()) {
          EXPECT_TRUE(test::costs_equal(
              eval.complete_cost(),
              model::bottleneck_cost(instance, Plan(mirror), cost_model)));
        }
      }
    }
  }
}

TEST(Evaluator_test, TermIfAppendedMatchesActualAppend) {
  const Instance instance = test::selective_instance(6, 3);
  Partial_plan_evaluator eval(instance);
  eval.append(0);
  eval.append(1);
  for (Service_id next : {2u, 3u, 4u, 5u}) {
    const double predicted = eval.term_if_appended(next);
    const double eps_before = eval.epsilon();
    eval.append(next);
    EXPECT_TRUE(test::costs_equal(eval.epsilon(),
                                  std::max(eps_before, predicted)));
    eval.pop();
  }
}

TEST(Evaluator_test, BottleneckPositionTracksArgmax) {
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    const Instance instance = test::expanding_instance(8, seed);
    Rng rng(seed);
    const auto perm = rng.permutation(8);
    Partial_plan_evaluator eval(instance);
    Plan mirror;
    for (const auto id : perm) {
      eval.append(static_cast<Service_id>(id));
      mirror.append(static_cast<Service_id>(id));
      if (eval.size() < 2) continue;
      // Recompute the earliest argmax over determined terms.
      double best = -1.0;
      std::size_t best_pos = 0;
      double product = 1.0;
      for (std::size_t p = 0; p + 1 < mirror.size(); ++p) {
        const auto& s = instance.service(mirror[p]);
        const double term =
            product * model::stage_term(s.cost, s.selectivity,
                                        instance.transfer(mirror[p],
                                                          mirror[p + 1]),
                                        Send_policy::sequential);
        if (term > best) {
          best = term;
          best_pos = p;
        }
        product *= s.selectivity;
      }
      EXPECT_EQ(eval.bottleneck_position(), best_pos);
    }
  }
}

TEST(Evaluator_test, ProductBeforeLast) {
  const Instance instance = test::selective_instance(4, 9);
  Partial_plan_evaluator eval(instance);
  eval.append(2);
  EXPECT_DOUBLE_EQ(eval.product_before_last(), 1.0);
  eval.append(0);
  EXPECT_DOUBLE_EQ(eval.product_before_last(), instance.selectivity(2));
  eval.append(3);
  EXPECT_TRUE(test::costs_equal(
      eval.product_before_last(),
      instance.selectivity(2) * instance.selectivity(0)));
}

TEST(Evaluator_test, ClearResetsEverything) {
  const Instance instance = test::selective_instance(5, 4);
  Partial_plan_evaluator eval(instance);
  eval.append(1);
  eval.append(3);
  eval.clear();
  EXPECT_TRUE(eval.empty());
  EXPECT_DOUBLE_EQ(eval.epsilon(), 0.0);
  EXPECT_DOUBLE_EQ(eval.product_through(), 1.0);
  EXPECT_FALSE(eval.contains(1));
  eval.append(1);  // reusable after clear
  EXPECT_EQ(eval.last(), 1u);
}

TEST(Evaluator_test, MisuseThrows) {
  const Instance instance = test::selective_instance(3, 2);
  Partial_plan_evaluator eval(instance);
  EXPECT_THROW(eval.pop(), Precondition_error);
  EXPECT_THROW(eval.last(), Precondition_error);
  EXPECT_THROW(eval.product_before_last(), Precondition_error);
  EXPECT_THROW(eval.complete_cost(), Precondition_error);
  eval.append(0);
  EXPECT_THROW(eval.append(0), Precondition_error);
  EXPECT_THROW(eval.append(7), Precondition_error);
  EXPECT_THROW(eval.bottleneck_position(), Precondition_error);
  EXPECT_THROW(eval.term_if_appended(0), Precondition_error);
}

}  // namespace
}  // namespace quest
