#include <gtest/gtest.h>

#include "quest/model/explain.hpp"
#include "support/helpers.hpp"

namespace quest {
namespace {

using model::Instance;
using model::Labeled_plan;
using model::Plan;

Instance two_site_instance() {
  Matrix<double> t = Matrix<double>::square(3, 0.0);
  for (std::size_t i = 0; i < 3; ++i) {
    for (std::size_t j = 0; j < 3; ++j) {
      if (i != j) t(i, j) = 1.0;
    }
  }
  return Instance({{4.0, 0.5, "scan"}, {1.0, 0.5, "filter"},
                   {2.0, 1.0, "enrich"}},
                  std::move(t));
}

TEST(Explain_test, PlanReportNamesBottleneckAndStages) {
  const Instance instance = two_site_instance();
  const std::string report = model::explain_plan(instance, Plan({0, 1, 2}));
  EXPECT_NE(report.find("scan -> filter -> enrich"), std::string::npos);
  EXPECT_NE(report.find("<- bottleneck"), std::string::npos);
  EXPECT_NE(report.find("scan"), std::string::npos);
  // Position-0 term: 4 + 0.5*1 = 4.5 is the bottleneck here.
  EXPECT_NE(report.find("4.500"), std::string::npos);
  EXPECT_NE(report.find("tuples in"), std::string::npos);
}

TEST(Explain_test, UnnamedServicesGetIds) {
  const Instance instance({{1.0, 0.5, ""}, {1.0, 0.5, ""}},
                          Matrix<double>::square(2, 0.0));
  const std::string report = model::explain_plan(instance, Plan({1, 0}));
  EXPECT_NE(report.find("WS1"), std::string::npos);
  EXPECT_NE(report.find("WS0"), std::string::npos);
}

TEST(Explain_test, ComparisonSortsByCostAndRatios) {
  const Instance instance = two_site_instance();
  const std::vector<Labeled_plan> plans = {
      {"forward", Plan({0, 1, 2})},
      {"backward", Plan({2, 1, 0})},
      {"best", Plan({1, 0, 2})},
  };
  const std::string report = model::compare_plans(instance, plans);
  // "best" plan: filter first -> max(1.5, 0.5*4.5, 0.25*2) = 2.25.
  const auto best_pos = report.find("best");
  const auto fwd_pos = report.find("forward");
  ASSERT_NE(best_pos, std::string::npos);
  ASSERT_NE(fwd_pos, std::string::npos);
  EXPECT_LT(best_pos, fwd_pos);  // sorted: cheapest first
  EXPECT_NE(report.find("1.000"), std::string::npos);  // best vs best ratio
}

TEST(Explain_test, ComparisonRequiresPlans) {
  const Instance instance = two_site_instance();
  EXPECT_THROW(model::compare_plans(instance, {}), Precondition_error);
}

TEST(Explain_test, OverlappedPolicyIsLabelled) {
  const Instance instance = two_site_instance();
  const std::string report = model::explain_plan(
      instance, Plan({0, 1, 2}),
      model::Cost_model::independent(model::Send_policy::overlapped));
  EXPECT_NE(report.find("max(c, sigma*t)"), std::string::npos);
}

}  // namespace
}  // namespace quest
