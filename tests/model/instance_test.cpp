#include <gtest/gtest.h>

#include <limits>

#include "quest/common/error.hpp"
#include "quest/model/instance.hpp"

namespace quest {
namespace {

using model::Instance;
using model::Service;

Matrix<double> zero3() { return Matrix<double>::square(3, 0.0); }

std::vector<Service> three_services() {
  return {{1.0, 0.5, "a"}, {2.0, 0.9, "b"}, {3.0, 1.0, "c"}};
}

TEST(Instance_test, BasicAccessors) {
  auto t = zero3();
  t(0, 1) = 1.5;
  t(1, 0) = 2.5;
  const Instance instance(three_services(), std::move(t), {}, "demo");
  EXPECT_EQ(instance.size(), 3u);
  EXPECT_EQ(instance.name(), "demo");
  EXPECT_DOUBLE_EQ(instance.cost(0), 1.0);
  EXPECT_DOUBLE_EQ(instance.selectivity(1), 0.9);
  EXPECT_DOUBLE_EQ(instance.transfer(0, 1), 1.5);
  EXPECT_DOUBLE_EQ(instance.transfer(1, 0), 2.5);
  EXPECT_DOUBLE_EQ(instance.sink_transfer(2), 0.0);
  EXPECT_EQ(instance.service(2).name, "c");
}

TEST(Instance_test, EmptySinkVectorBecomesZeros) {
  const Instance instance(three_services(), zero3());
  for (model::Service_id i = 0; i < 3; ++i) {
    EXPECT_DOUBLE_EQ(instance.sink_transfer(i), 0.0);
  }
}

TEST(Instance_test, AllSelectiveDetection) {
  EXPECT_TRUE(Instance(three_services(), zero3()).all_selective());
  auto services = three_services();
  services[1].selectivity = 1.01;
  EXPECT_FALSE(Instance(std::move(services), zero3()).all_selective());
}

TEST(Instance_test, UniformTransferDetection) {
  auto t = zero3();
  for (std::size_t i = 0; i < 3; ++i) {
    for (std::size_t j = 0; j < 3; ++j) {
      if (i != j) t(i, j) = 2.0;
    }
  }
  EXPECT_TRUE(Instance(three_services(), t).uniform_transfer());
  t(0, 2) = 2.0001;
  EXPECT_FALSE(Instance(three_services(), t).uniform_transfer());
  // Non-zero sink links break uniformity (the last service pays too).
  auto t2 = zero3();
  EXPECT_FALSE(
      Instance(three_services(), t2, {0.0, 1.0, 0.0}).uniform_transfer());
}

TEST(Instance_test, MaxOutgoingTransferIncludesSink) {
  auto t = zero3();
  t(0, 1) = 3.0;
  t(0, 2) = 5.0;
  const Instance instance(three_services(), std::move(t), {4.0, 0.0, 0.0});
  const double all = instance.max_outgoing_transfer(
      0, [](model::Service_id) { return true; });
  EXPECT_DOUBLE_EQ(all, 5.0);
  const double without_2 = instance.max_outgoing_transfer(
      0, [](model::Service_id v) { return v != 2; });
  EXPECT_DOUBLE_EQ(without_2, 4.0);  // sink dominates t(0,1)
}

TEST(Instance_test, ValidationRejectsMalformedInput) {
  EXPECT_THROW(Instance({}, Matrix<double>{}), Precondition_error);
  EXPECT_THROW(Instance(three_services(), Matrix<double>::square(2, 0.0)),
               Precondition_error);
  EXPECT_THROW(Instance(three_services(), zero3(), {1.0}),
               Precondition_error);

  auto bad_cost = three_services();
  bad_cost[0].cost = -1.0;
  EXPECT_THROW(Instance(std::move(bad_cost), zero3()), Precondition_error);

  auto nan_selectivity = three_services();
  nan_selectivity[2].selectivity = std::numeric_limits<double>::quiet_NaN();
  EXPECT_THROW(Instance(std::move(nan_selectivity), zero3()),
               Precondition_error);

  auto diag = zero3();
  diag(1, 1) = 0.5;
  EXPECT_THROW(Instance(three_services(), std::move(diag)),
               Precondition_error);

  auto negative_t = zero3();
  negative_t(0, 1) = -0.5;
  EXPECT_THROW(Instance(three_services(), std::move(negative_t)),
               Precondition_error);

  auto inf_t = zero3();
  inf_t(2, 0) = std::numeric_limits<double>::infinity();
  EXPECT_THROW(Instance(three_services(), std::move(inf_t)),
               Precondition_error);

  EXPECT_THROW(Instance(three_services(), zero3(), {0.0, -1.0, 0.0}),
               Precondition_error);
}

TEST(Instance_test, ServiceIdRangeChecks) {
  const Instance instance(three_services(), zero3());
  EXPECT_THROW(instance.service(3), Precondition_error);
  EXPECT_THROW(instance.transfer(0, 3), Precondition_error);
}

TEST(Instance_test, Equality) {
  const Instance a(three_services(), zero3());
  const Instance b(three_services(), zero3());
  EXPECT_TRUE(a == b);
  auto services = three_services();
  services[0].cost = 9.0;
  const Instance c(std::move(services), zero3());
  EXPECT_FALSE(a == c);
}

}  // namespace
}  // namespace quest
