#include <gtest/gtest.h>

#include "quest/common/error.hpp"
#include "quest/model/instance.hpp"
#include "quest/model/plan.hpp"

namespace quest {
namespace {

using model::Plan;
using model::Service_id;

TEST(Plan_test, IdentityAndAccessors) {
  const Plan plan = Plan::identity(4);
  EXPECT_EQ(plan.size(), 4u);
  EXPECT_FALSE(plan.empty());
  EXPECT_EQ(plan.front(), 0u);
  EXPECT_EQ(plan.back(), 3u);
  EXPECT_EQ(plan[2], 2u);
  EXPECT_THROW(plan[4], Precondition_error);
}

TEST(Plan_test, EmptyPlanGuards) {
  const Plan plan;
  EXPECT_TRUE(plan.empty());
  EXPECT_THROW(plan.front(), Precondition_error);
  EXPECT_THROW(plan.back(), Precondition_error);
}

TEST(Plan_test, AppendAndPop) {
  Plan plan;
  plan.append(2);
  plan.append(0);
  EXPECT_EQ(plan.size(), 2u);
  EXPECT_EQ(plan.back(), 0u);
  plan.pop();
  EXPECT_EQ(plan.back(), 2u);
}

TEST(Plan_test, PermutationValidation) {
  EXPECT_TRUE(Plan({2, 0, 1}).is_permutation_of(3));
  EXPECT_FALSE(Plan({0, 1}).is_permutation_of(3));       // too short
  EXPECT_FALSE(Plan({0, 1, 1}).is_permutation_of(3));    // duplicate
  EXPECT_FALSE(Plan({0, 1, 3}).is_permutation_of(3));    // out of range
  EXPECT_TRUE(Plan({0}).is_permutation_of(1));
}

TEST(Plan_test, PositionsMapAndAbsentServices) {
  const Plan plan({2, 0});
  const auto positions = plan.positions(4);
  ASSERT_EQ(positions.size(), 4u);
  EXPECT_EQ(positions[2], 0u);
  EXPECT_EQ(positions[0], 1u);
  EXPECT_EQ(positions[1], model::invalid_service);
  EXPECT_EQ(positions[3], model::invalid_service);
  EXPECT_THROW(plan.positions(2), Precondition_error);  // id 2 out of range
}

TEST(Plan_test, ToStringForms) {
  const model::Instance instance(
      {{1.0, 0.5, "alpha"}, {1.0, 0.5, ""}, {1.0, 0.5, "gamma"}},
      Matrix<double>::square(3, 0.0));
  const Plan plan({0, 1, 2});
  EXPECT_EQ(plan.to_string(instance), "alpha -> WS1 -> gamma");
  EXPECT_EQ(plan.to_string(), "[0 1 2]");
  EXPECT_EQ(Plan().to_string(), "[]");
}

TEST(Plan_test, EqualityAndIteration) {
  const Plan a({1, 0});
  const Plan b({1, 0});
  const Plan c({0, 1});
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  std::vector<Service_id> seen;
  for (const Service_id id : a) seen.push_back(id);
  EXPECT_EQ(seen, (std::vector<Service_id>{1, 0}));
}

}  // namespace
}  // namespace quest
