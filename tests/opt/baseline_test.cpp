#include <gtest/gtest.h>

#include "quest/opt/exhaustive.hpp"
#include "quest/opt/greedy.hpp"
#include "quest/opt/random_sampler.hpp"
#include "quest/workload/generators.hpp"
#include "support/helpers.hpp"

namespace quest {
namespace {

using model::Instance;
using opt::Exhaustive_optimizer;
using opt::Greedy_optimizer;
using opt::Random_sampler_optimizer;
using opt::Request;
using opt::Uniform_comm_optimizer;

Request request_for(const Instance& instance) {
  Request request;
  request.instance = &instance;
  return request;
}

TEST(Greedy_test, ProducesValidPlanNeverBelowOptimum) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    const Instance instance = test::selective_instance(7, seed);
    const auto request = request_for(instance);
    const auto greedy = Greedy_optimizer().optimize(request);
    const auto optimal = Exhaustive_optimizer().optimize(request);
    EXPECT_TRUE(greedy.plan.is_permutation_of(7));
    EXPECT_FALSE(greedy.proven_optimal);
    EXPECT_GE(greedy.cost, optimal.cost * (1.0 - test::cost_tolerance));
    EXPECT_TRUE(test::costs_equal(
        greedy.cost, model::bottleneck_cost(instance, greedy.plan)));
  }
}

TEST(Greedy_test, RespectsPrecedence) {
  const Instance instance = test::selective_instance(8, 3);
  Rng rng(17);
  const auto dag = workload::make_random_dag(8, 0.4, rng);
  Request request = request_for(instance);
  request.precedence = &dag;
  const auto result = Greedy_optimizer().optimize(request);
  EXPECT_TRUE(dag.respects(result.plan.order()));
  EXPECT_TRUE(result.plan.is_permutation_of(8));
}

TEST(Greedy_test, SingleServiceTrivial) {
  const Instance instance = test::selective_instance(1, 1);
  const auto result = Greedy_optimizer().optimize(request_for(instance));
  EXPECT_EQ(result.plan.size(), 1u);
}

TEST(Uniform_comm_test, OptimalOnUniformNetworks) {
  // On a truly flat network the gamma ordering must equal the exhaustive
  // optimum (the Srivastava et al. special case).
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    Rng rng(seed);
    workload::Heterogeneity_spec spec;
    spec.n = 7;
    spec.heterogeneity = 0.0;  // flat
    const Instance instance = workload::make_heterogeneous(spec, rng);
    ASSERT_TRUE(instance.uniform_transfer());
    const auto request = request_for(instance);
    const auto got = Uniform_comm_optimizer().optimize(request);
    const auto want = Exhaustive_optimizer().optimize(request);
    EXPECT_TRUE(test::costs_equal(got.cost, want.cost)) << "seed " << seed;
    EXPECT_TRUE(got.proven_optimal);
  }
}

TEST(Uniform_comm_test, HeuristicOnHeterogeneousNetworks) {
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    const Instance instance = test::selective_instance(7, seed);
    const auto request = request_for(instance);
    const auto got = Uniform_comm_optimizer().optimize(request);
    const auto want = Exhaustive_optimizer().optimize(request);
    EXPECT_FALSE(got.proven_optimal);
    EXPECT_GE(got.cost, want.cost * (1.0 - test::cost_tolerance));
    EXPECT_TRUE(got.plan.is_permutation_of(7));
  }
}

TEST(Uniform_comm_test, PrecedenceListScheduling) {
  const Instance instance = test::selective_instance(8, 5);
  Rng rng(5);
  const auto dag = workload::make_random_dag(8, 0.5, rng);
  Request request = request_for(instance);
  request.precedence = &dag;
  const auto result = Uniform_comm_optimizer().optimize(request);
  EXPECT_TRUE(dag.respects(result.plan.order()));
  EXPECT_FALSE(result.proven_optimal);
}

TEST(Random_sampler_test, DeterministicPerSeedAndImprovesWithSamples) {
  const Instance instance = test::selective_instance(8, 11);
  const auto request = request_for(instance);

  opt::Random_sampler_options few;
  few.seed = 9;
  few.samples = 5;
  opt::Random_sampler_options many;
  many.seed = 9;
  many.samples = 2000;

  const auto a = Random_sampler_optimizer(few).optimize(request);
  const auto b = Random_sampler_optimizer(few).optimize(request);
  EXPECT_EQ(a.plan, b.plan);
  EXPECT_TRUE(test::costs_equal(a.cost, b.cost));

  const auto big = Random_sampler_optimizer(many).optimize(request);
  EXPECT_LE(big.cost, a.cost * (1.0 + test::cost_tolerance));
  EXPECT_EQ(big.stats.complete_plans, 2000u);
}

TEST(Random_sampler_test, RespectsPrecedence) {
  const Instance instance = test::selective_instance(7, 2);
  Rng rng(2);
  const auto dag = workload::make_random_dag(7, 0.5, rng);
  Request request = request_for(instance);
  request.precedence = &dag;
  opt::Random_sampler_options options;
  options.samples = 50;
  const auto result = Random_sampler_optimizer(options).optimize(request);
  EXPECT_TRUE(dag.respects(result.plan.order()));
}

TEST(Exhaustive_test, BoundedMatchesUnboundedWithFewerNodes) {
  const Instance instance = test::selective_instance(8, 21);
  const auto request = request_for(instance);
  const auto plain = Exhaustive_optimizer(false).optimize(request);
  const auto bounded = Exhaustive_optimizer(true).optimize(request);
  EXPECT_TRUE(test::costs_equal(plain.cost, bounded.cost));
  EXPECT_LT(bounded.stats.nodes_expanded, plain.stats.nodes_expanded);
  EXPECT_GT(bounded.stats.lemma1_cutoffs, 0u);
}

TEST(Exhaustive_test, NodeLimitAborts) {
  const Instance instance = test::selective_instance(10, 4);
  Request request = request_for(instance);
  request.budget.node_limit = 100;
  const auto result = Exhaustive_optimizer().optimize(request);
  EXPECT_EQ(result.termination, opt::Termination::budget_exhausted);
  EXPECT_FALSE(result.proven_optimal);
}

TEST(Validate_request_test, Rejections) {
  Request request;
  EXPECT_THROW(opt::validate_request(request), Precondition_error);
  const Instance instance = test::selective_instance(3, 1);
  request.instance = &instance;
  constraints::Precedence_graph wrong(4);
  request.precedence = &wrong;
  EXPECT_THROW(opt::validate_request(request), Precondition_error);
}

}  // namespace
}  // namespace quest
