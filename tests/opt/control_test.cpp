// Budget and cancellation regressions, per engine. Before the anytime
// redesign only frontier/exhaustive/bnb checked time limits and nothing
// else honored node limits; every registered engine must now stop under
// each budget dimension and report the Termination reason honestly.

#include <gtest/gtest.h>

#include <cmath>
#include <string_view>
#include <vector>

#include "quest/core/engines.hpp"
#include "quest/opt/search_control.hpp"
#include "quest/opt/stop_token.hpp"
#include "support/helpers.hpp"

namespace quest {
namespace {

using core::make_optimizer;
using opt::Request;
using opt::Termination;

Request request_for(const model::Instance& instance) {
  Request request;
  request.instance = &instance;
  request.seed = 7;  // reproducible stochastic engines
  return request;
}

// Engines whose full run on a 10-service instance far exceeds 3 work
// units — every one of them must notice the node budget.
const char* const kAllEngines[] = {
    "greedy",     "uniform-opt", "local-search",       "multistart",
    "annealing",  "random",      "exhaustive",         "exhaustive-bounded",
    "dp",         "frontier",    "bnb",                "bnb-lb",
    "portfolio"};

TEST(Budget_test, EveryEngineHonorsTheNodeLimit) {
  const auto instance = test::selective_instance(10, 21);
  Request request = request_for(instance);
  request.budget.node_limit = 3;
  for (const char* name : kAllEngines) {
    const auto result = make_optimizer(name)->optimize(request);
    EXPECT_EQ(result.termination, Termination::budget_exhausted) << name;
    EXPECT_FALSE(result.proven_optimal) << name;
    EXPECT_LE(result.stats.work(), 16u)
        << name << " kept working long past the budget";
  }
}

TEST(Budget_test, EveryEngineHonorsTheDeadline) {
  const auto instance = test::selective_instance(10, 22);
  Request request = request_for(instance);
  request.budget.time_limit_seconds = 1e-12;  // expired before the run
  for (const char* name : kAllEngines) {
    const auto result = make_optimizer(name)->optimize(request);
    EXPECT_EQ(result.termination, Termination::budget_exhausted) << name;
    EXPECT_FALSE(result.proven_optimal) << name;
  }
}

TEST(Budget_test, EveryEngineHonorsTheStopToken) {
  const auto instance = test::selective_instance(10, 23);
  opt::Stop_source source;
  source.request_stop();
  Request request = request_for(instance);
  request.stop = source.token();
  for (const char* name : kAllEngines) {
    const auto result = make_optimizer(name)->optimize(request);
    EXPECT_EQ(result.termination, Termination::cancelled) << name;
    EXPECT_FALSE(result.proven_optimal) << name;
  }
}

TEST(Budget_test, CostTargetStopsAtTheFirstGoodEnoughIncumbent) {
  const auto instance = test::selective_instance(10, 24);
  Request request = request_for(instance);
  // Any complete plan beats an astronomically large target, so engines
  // must stop at their very first incumbent. The two engines whose first
  // incumbent IS their completed proof (the DP's swept optimum and
  // frontier's first closed goal) keep the stronger "optimal" verdict —
  // no work was left for the target to skip.
  request.budget.cost_target = 1e18;
  for (const char* name : kAllEngines) {
    const auto result = make_optimizer(name)->optimize(request);
    if (std::string_view(name) == "dp" ||
        std::string_view(name) == "frontier") {
      EXPECT_EQ(result.termination, Termination::optimal) << name;
      EXPECT_TRUE(result.proven_optimal) << name;
    } else {
      EXPECT_EQ(result.termination, Termination::cost_target_reached)
          << name;
    }
    EXPECT_TRUE(result.plan.is_permutation_of(instance.size())) << name;
    EXPECT_LE(result.cost, 1e18) << name;
  }
}

TEST(Budget_test, UnreachableCostTargetDoesNotStopAnyone) {
  const auto instance = test::selective_instance(8, 25);
  Request request = request_for(instance);
  request.budget.cost_target = 1e-12;  // below any real bottleneck cost
  for (const char* name : kAllEngines) {
    const auto result = make_optimizer(name)->optimize(request);
    EXPECT_FALSE(opt::stopped_early(result.termination)) << name;
    EXPECT_TRUE(result.plan.is_permutation_of(instance.size())) << name;
  }
}

TEST(Budget_test, DpReportsHonestlyWhenItHasNoIncumbent) {
  // The subset DP cannot surface a mid-sweep incumbent; a starved budget
  // must come back empty-handed but honest, never with a bogus plan.
  const auto instance = test::selective_instance(12, 26);
  Request request = request_for(instance);
  request.budget.node_limit = 5;
  const auto result = make_optimizer("dp")->optimize(request);
  EXPECT_EQ(result.termination, Termination::budget_exhausted);
  EXPECT_EQ(result.plan.size(), 0u);
  EXPECT_TRUE(std::isinf(result.cost));
}

TEST(Budget_test, BudgetedHeuristicsStillReturnTheirBestIncumbent) {
  // Give random sampling enough budget for a handful of samples: it must
  // stop early *and* hand back the best of what it saw.
  const auto instance = test::selective_instance(9, 27);
  Request request = request_for(instance);
  request.budget.node_limit = 10;
  const auto result = make_optimizer("random")->optimize(request);
  EXPECT_EQ(result.termination, Termination::budget_exhausted);
  EXPECT_TRUE(result.plan.is_permutation_of(9));
  EXPECT_EQ(result.stats.complete_plans, 10u);
  EXPECT_TRUE(test::costs_equal(
      result.cost, model::bottleneck_cost(instance, result.plan)));
}

TEST(Budget_test, IncumbentCallbackStreamsImprovingCosts) {
  const auto instance = test::selective_instance(8, 28);
  Request request = request_for(instance);
  std::vector<double> streamed;
  request.on_incumbent = [&](const model::Plan& plan, double cost,
                             const opt::Search_stats& stats) {
    EXPECT_TRUE(plan.is_permutation_of(instance.size()));
    EXPECT_GT(stats.incumbent_updates, 0u);
    streamed.push_back(cost);
  };
  const auto result = make_optimizer("exhaustive")->optimize(request);
  ASSERT_FALSE(streamed.empty());
  for (std::size_t i = 1; i < streamed.size(); ++i) {
    EXPECT_LT(streamed[i], streamed[i - 1]) << "stream must improve";
  }
  EXPECT_TRUE(test::costs_equal(streamed.back(), result.cost));
  EXPECT_EQ(streamed.size(), result.stats.incumbent_updates);
}

TEST(Budget_test, RemainingBudgetShrinksWithWork) {
  const auto instance = test::selective_instance(4, 1);
  Request request = request_for(instance);
  request.budget.node_limit = 100;
  opt::Search_stats stats;
  opt::Search_control control(request, stats);
  EXPECT_EQ(control.remaining_budget().node_limit, 100u);
  stats.nodes_expanded = 30;
  stats.complete_plans = 20;
  EXPECT_EQ(control.remaining_budget().node_limit, 50u);
  stats.nodes_expanded = 1000;
  // Overdrawn: clamps to the smallest non-zero budget, never "unlimited".
  EXPECT_EQ(control.remaining_budget().node_limit, 1u);
}

TEST(Stop_token_test, DefaultTokenNeverStops) {
  opt::Stop_token token;
  EXPECT_FALSE(token.stop_possible());
  EXPECT_FALSE(token.stop_requested());
}

TEST(Stop_token_test, TokensShareTheirSource) {
  opt::Stop_source source;
  const opt::Stop_token a = source.token();
  const opt::Stop_token b = a;  // copies stay connected
  EXPECT_TRUE(a.stop_possible());
  EXPECT_FALSE(a.stop_requested());
  source.request_stop();
  EXPECT_TRUE(a.stop_requested());
  EXPECT_TRUE(b.stop_requested());
  EXPECT_TRUE(source.stop_requested());
}

}  // namespace
}  // namespace quest
