// The subset DP must agree with exhaustive search everywhere it runs.

#include <gtest/gtest.h>

#include "quest/opt/dp.hpp"
#include "quest/opt/exhaustive.hpp"
#include "quest/workload/generators.hpp"
#include "support/helpers.hpp"

namespace quest {
namespace {

using model::Instance;
using model::Send_policy;
using opt::Dp_optimizer;
using opt::Exhaustive_optimizer;
using opt::Request;

struct Param {
  std::size_t n;
  std::uint64_t seed;
};

class Dp_matches_exhaustive : public ::testing::TestWithParam<Param> {};

TEST_P(Dp_matches_exhaustive, Selective) {
  const auto [n, seed] = GetParam();
  const Instance instance = test::selective_instance(n, seed);
  Request request;
  request.instance = &instance;
  Dp_optimizer dp;
  Exhaustive_optimizer exhaustive;
  const auto got = dp.optimize(request);
  const auto want = exhaustive.optimize(request);
  EXPECT_TRUE(test::costs_equal(got.cost, want.cost));
  EXPECT_TRUE(got.proven_optimal);
  EXPECT_TRUE(got.plan.is_permutation_of(n));
  EXPECT_TRUE(test::costs_equal(
      got.cost, model::bottleneck_cost(instance, got.plan)));
}

TEST_P(Dp_matches_exhaustive, ExpandingWithSink) {
  const auto [n, seed] = GetParam();
  Rng rng(seed);
  workload::Uniform_spec spec;
  spec.n = n;
  spec.selectivity_min = 0.3;
  spec.selectivity_max = 2.5;
  spec.sink_min = 0.1;
  spec.sink_max = 3.0;
  const Instance instance = workload::make_uniform(spec, rng);
  Request request;
  request.instance = &instance;
  const auto got = Dp_optimizer().optimize(request);
  const auto want = Exhaustive_optimizer().optimize(request);
  EXPECT_TRUE(test::costs_equal(got.cost, want.cost));
}

TEST_P(Dp_matches_exhaustive, Overlapped) {
  const auto [n, seed] = GetParam();
  const Instance instance = test::selective_instance(n, seed);
  Request request;
  request.instance = &instance;
  request.model = model::Cost_model::independent(Send_policy::overlapped);
  const auto got = Dp_optimizer().optimize(request);
  const auto want = Exhaustive_optimizer().optimize(request);
  EXPECT_TRUE(test::costs_equal(got.cost, want.cost));
}

TEST_P(Dp_matches_exhaustive, WithPrecedence) {
  const auto [n, seed] = GetParam();
  const Instance instance = test::selective_instance(n, seed);
  Rng rng(seed ^ 0xBEEF);
  const auto dag = workload::make_random_dag(n, 0.35, rng);
  Request request;
  request.instance = &instance;
  request.precedence = &dag;
  const auto got = Dp_optimizer().optimize(request);
  const auto want = Exhaustive_optimizer().optimize(request);
  EXPECT_TRUE(test::costs_equal(got.cost, want.cost));
  EXPECT_TRUE(dag.respects(got.plan.order()));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, Dp_matches_exhaustive,
    ::testing::Values(Param{2, 1}, Param{3, 2}, Param{4, 3}, Param{5, 4},
                      Param{6, 5}, Param{7, 6}, Param{8, 7}, Param{8, 8}),
    [](const auto& param_info) {
      return "n" + std::to_string(param_info.param.n) + "_seed" +
             std::to_string(param_info.param.seed);
    });

TEST(Dp_test, RejectsOversizedInstances) {
  const Instance instance = test::selective_instance(
      Dp_optimizer::max_services + 1, 1);
  Request request;
  request.instance = &instance;
  EXPECT_THROW(Dp_optimizer().optimize(request), Precondition_error);
}

TEST(Dp_test, SingleService) {
  const Instance instance = test::selective_instance(1, 1);
  Request request;
  request.instance = &instance;
  const auto result = Dp_optimizer().optimize(request);
  EXPECT_TRUE(result.proven_optimal);
  EXPECT_EQ(result.plan.size(), 1u);
}

}  // namespace
}  // namespace quest
