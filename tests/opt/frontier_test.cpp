// The frontier (best-first subset) search must agree with exhaustive
// search and the DP everywhere, and must expand no more states than the
// DP touches.

#include <gtest/gtest.h>

#include "quest/opt/dp.hpp"
#include "quest/opt/exhaustive.hpp"
#include "quest/opt/frontier.hpp"
#include "quest/workload/generators.hpp"
#include "support/helpers.hpp"

namespace quest {
namespace {

using model::Instance;
using opt::Dp_optimizer;
using opt::Exhaustive_optimizer;
using opt::Frontier_optimizer;
using opt::Request;

struct Param {
  std::size_t n;
  std::uint64_t seed;
};

class Frontier_matches_exact : public ::testing::TestWithParam<Param> {};

TEST_P(Frontier_matches_exact, Selective) {
  const auto [n, seed] = GetParam();
  const Instance instance = test::selective_instance(n, seed);
  Request request;
  request.instance = &instance;
  const auto got = Frontier_optimizer().optimize(request);
  const auto want = Exhaustive_optimizer().optimize(request);
  EXPECT_TRUE(test::costs_equal(got.cost, want.cost));
  EXPECT_TRUE(got.proven_optimal);
  EXPECT_TRUE(got.plan.is_permutation_of(n));
  EXPECT_TRUE(test::costs_equal(
      got.cost, model::bottleneck_cost(instance, got.plan)));
}

TEST_P(Frontier_matches_exact, ExpandingWithSink) {
  const auto [n, seed] = GetParam();
  Rng rng(seed);
  workload::Uniform_spec spec;
  spec.n = n;
  spec.selectivity_min = 0.3;
  spec.selectivity_max = 2.5;
  spec.sink_min = 0.1;
  spec.sink_max = 3.0;
  const Instance instance = workload::make_uniform(spec, rng);
  Request request;
  request.instance = &instance;
  const auto got = Frontier_optimizer().optimize(request);
  const auto want = Exhaustive_optimizer().optimize(request);
  EXPECT_TRUE(test::costs_equal(got.cost, want.cost));
}

TEST_P(Frontier_matches_exact, Overlapped) {
  const auto [n, seed] = GetParam();
  const Instance instance = test::selective_instance(n, seed);
  Request request;
  request.instance = &instance;
  request.model =
      model::Cost_model::independent(model::Send_policy::overlapped);
  const auto got = Frontier_optimizer().optimize(request);
  const auto want = Exhaustive_optimizer().optimize(request);
  EXPECT_TRUE(test::costs_equal(got.cost, want.cost));
}

TEST_P(Frontier_matches_exact, WithPrecedence) {
  const auto [n, seed] = GetParam();
  const Instance instance = test::selective_instance(n, seed);
  Rng rng(seed ^ 0xF00Du);
  const auto dag = workload::make_random_dag(n, 0.35, rng);
  Request request;
  request.instance = &instance;
  request.precedence = &dag;
  const auto got = Frontier_optimizer().optimize(request);
  const auto want = Exhaustive_optimizer().optimize(request);
  EXPECT_TRUE(test::costs_equal(got.cost, want.cost));
  EXPECT_TRUE(dag.respects(got.plan.order()));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, Frontier_matches_exact,
    ::testing::Values(Param{1, 1}, Param{2, 2}, Param{3, 3}, Param{4, 4},
                      Param{5, 5}, Param{6, 6}, Param{7, 7}, Param{8, 8}),
    [](const auto& param_info) {
      return "n" + std::to_string(param_info.param.n) + "_seed" +
             std::to_string(param_info.param.seed);
    });

TEST(Frontier_test, MatchesDpAtLargerSizes) {
  for (std::uint64_t seed : {1u, 2u, 3u}) {
    const Instance instance = test::selective_instance(13, seed * 101);
    Request request;
    request.instance = &instance;
    const auto got = Frontier_optimizer().optimize(request);
    const auto want = Dp_optimizer().optimize(request);
    EXPECT_TRUE(test::costs_equal(got.cost, want.cost)) << "seed " << seed;
  }
}

TEST(Frontier_test, ExpandsFewerStatesThanTheDpSweeps) {
  const Instance instance = test::selective_instance(14, 4);
  Request request;
  request.instance = &instance;
  const auto frontier = Frontier_optimizer().optimize(request);
  const auto dp = Dp_optimizer().optimize(request);
  // The DP's nodes counter tallies swept reachable states; best-first
  // should close the goal long before touching all of them on selective
  // instances.
  EXPECT_LT(frontier.stats.nodes_expanded, dp.stats.nodes_expanded / 2);
}

TEST(Frontier_test, NodeLimitAborts) {
  const Instance instance = test::selective_instance(12, 9);
  Request request;
  request.instance = &instance;
  request.budget.node_limit = 3;
  const auto result = Frontier_optimizer().optimize(request);
  EXPECT_EQ(result.termination, opt::Termination::budget_exhausted);
  EXPECT_FALSE(result.proven_optimal);
}

TEST(Frontier_test, RejectsOversizedInstances) {
  const Instance instance = test::selective_instance(
      Frontier_optimizer::max_services + 1, 1);
  Request request;
  request.instance = &instance;
  EXPECT_THROW(Frontier_optimizer().optimize(request), Precondition_error);
}

}  // namespace
}  // namespace quest
