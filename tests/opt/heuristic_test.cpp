#include <gtest/gtest.h>

#include "quest/opt/annealing.hpp"
#include "quest/opt/exhaustive.hpp"
#include "quest/opt/greedy.hpp"
#include "quest/opt/local_search.hpp"
#include "quest/opt/multistart.hpp"
#include "quest/workload/generators.hpp"
#include "support/helpers.hpp"

namespace quest {
namespace {

using model::Instance;
using model::Plan;
using opt::Annealing_optimizer;
using opt::Greedy_optimizer;
using opt::Local_search_optimizer;
using opt::Request;

Request request_for(const Instance& instance) {
  Request request;
  request.instance = &instance;
  return request;
}

TEST(Local_search_test, NeverWorseThanGreedySeed) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    const Instance instance = test::selective_instance(9, seed);
    const auto request = request_for(instance);
    const auto greedy = Greedy_optimizer().optimize(request);
    const auto polished = Local_search_optimizer().optimize(request);
    EXPECT_LE(polished.cost, greedy.cost * (1.0 + test::cost_tolerance));
    EXPECT_TRUE(polished.plan.is_permutation_of(9));
  }
}

TEST(Local_search_test, ReachesLocalOptimum) {
  const Instance instance = test::selective_instance(8, 5);
  const auto request = request_for(instance);
  Local_search_optimizer search;
  const auto first = search.optimize(request);
  // Re-polishing a local optimum must not move.
  const auto second = search.improve(request, first.plan);
  EXPECT_TRUE(test::costs_equal(first.cost, second.cost));
  EXPECT_EQ(first.plan, second.plan);
}

TEST(Local_search_test, FindsOptimumOnSmallInstances) {
  // Swap+insert neighborhoods are strong enough for tiny instances; allow
  // equality failures to be loud if the neighborhood regresses.
  int optimal_hits = 0;
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    const Instance instance = test::selective_instance(5, seed);
    const auto request = request_for(instance);
    const auto polished = Local_search_optimizer().optimize(request);
    const auto optimal = opt::Exhaustive_optimizer().optimize(request);
    if (test::costs_equal(polished.cost, optimal.cost)) ++optimal_hits;
    EXPECT_GE(polished.cost, optimal.cost * (1.0 - test::cost_tolerance));
  }
  EXPECT_GE(optimal_hits, 7);
}

TEST(Local_search_test, RespectsPrecedence) {
  const Instance instance = test::selective_instance(8, 7);
  Rng rng(7);
  const auto dag = workload::make_random_dag(8, 0.4, rng);
  Request request = request_for(instance);
  request.precedence = &dag;
  const auto result = Local_search_optimizer().optimize(request);
  EXPECT_TRUE(dag.respects(result.plan.order()));
}

TEST(Local_search_test, SeedValidation) {
  const Instance instance = test::selective_instance(4, 1);
  const auto request = request_for(instance);
  Local_search_optimizer search;
  EXPECT_THROW(search.improve(request, Plan({0, 1})), Precondition_error);
  constraints::Precedence_graph dag(4);
  dag.add_edge(3, 0);
  Request constrained = request;
  constrained.precedence = &dag;
  EXPECT_THROW(search.improve(constrained, Plan({0, 1, 2, 3})),
               Precondition_error);
}

TEST(Local_search_test, MaxRoundsCapsWork) {
  const Instance instance = test::selective_instance(10, 3);
  opt::Local_search_options options;
  options.max_rounds = 1;
  Local_search_optimizer capped(options);
  const auto result = capped.optimize(request_for(instance));
  EXPECT_TRUE(result.plan.is_permutation_of(10));
}

TEST(Annealing_test, NeverWorseThanGreedyAndDeterministic) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    const Instance instance = test::selective_instance(9, seed * 13);
    const auto request = request_for(instance);
    const auto greedy = Greedy_optimizer().optimize(request);

    opt::Annealing_options options;
    options.seed = seed;
    options.iterations = 4000;
    const auto a = Annealing_optimizer(options).optimize(request);
    const auto b = Annealing_optimizer(options).optimize(request);
    EXPECT_LE(a.cost, greedy.cost * (1.0 + test::cost_tolerance));
    EXPECT_EQ(a.plan, b.plan);
    EXPECT_TRUE(a.plan.is_permutation_of(9));
  }
}

TEST(Annealing_test, RespectsPrecedence) {
  const Instance instance = test::selective_instance(8, 2);
  Rng rng(23);
  const auto dag = workload::make_random_dag(8, 0.3, rng);
  Request request = request_for(instance);
  request.precedence = &dag;
  opt::Annealing_options options;
  options.iterations = 2000;
  const auto result = Annealing_optimizer(options).optimize(request);
  EXPECT_TRUE(dag.respects(result.plan.order()));
}

TEST(Multistart_test, NeverWorseThanSingleStartAndDeterministic) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    const Instance instance = test::selective_instance(9, seed * 19);
    const auto request = request_for(instance);
    const auto single = Local_search_optimizer().optimize(request);

    opt::Multistart_options options;
    options.seed = seed;
    options.restarts = 6;
    const auto a = opt::Multistart_optimizer(options).optimize(request);
    const auto b = opt::Multistart_optimizer(options).optimize(request);
    EXPECT_LE(a.cost, single.cost * (1.0 + test::cost_tolerance));
    EXPECT_EQ(a.plan, b.plan);
    EXPECT_TRUE(a.plan.is_permutation_of(9));
    EXPECT_FALSE(a.proven_optimal);
  }
}

TEST(Multistart_test, FindsOptimumMoreOftenThanSingleStart) {
  int single_hits = 0;
  int multi_hits = 0;
  for (std::uint64_t seed = 1; seed <= 15; ++seed) {
    // Bottleneck-TSP instances, where single-start local search struggles
    // (E3: 28% optimal).
    Rng rng(seed * 607);
    workload::Bottleneck_tsp_spec spec;
    spec.n = 8;
    const Instance instance = workload::make_bottleneck_tsp(spec, rng);
    const auto request = request_for(instance);
    const double optimum =
        opt::Exhaustive_optimizer().optimize(request).cost;
    if (test::costs_equal(
            Local_search_optimizer().optimize(request).cost, optimum)) {
      ++single_hits;
    }
    opt::Multistart_options options;
    options.seed = seed;
    options.restarts = 10;
    if (test::costs_equal(
            opt::Multistart_optimizer(options).optimize(request).cost,
            optimum)) {
      ++multi_hits;
    }
  }
  EXPECT_GE(multi_hits, single_hits);
  EXPECT_GE(multi_hits, 10);
}

TEST(Multistart_test, RespectsPrecedence) {
  const Instance instance = test::selective_instance(8, 31);
  Rng rng(31);
  const auto dag = workload::make_random_dag(8, 0.4, rng);
  Request request = request_for(instance);
  request.precedence = &dag;
  opt::Multistart_options options;
  options.restarts = 4;
  const auto result = opt::Multistart_optimizer(options).optimize(request);
  EXPECT_TRUE(dag.respects(result.plan.order()));
}

TEST(Annealing_test, TinyInstances) {
  const Instance instance = test::selective_instance(1, 1);
  const auto result = Annealing_optimizer().optimize(request_for(instance));
  EXPECT_EQ(result.plan.size(), 1u);
}

}  // namespace
}  // namespace quest
