// Registry spec parsing and construction: every engine is reachable by
// its stable name, malformed specs fail loudly with actionable messages,
// and the top-level Request::seed reproduces stochastic engines from one
// knob.

#include <gtest/gtest.h>

#include <string>

#include "quest/core/engines.hpp"
#include "quest/opt/random_sampler.hpp"
#include "support/helpers.hpp"

namespace quest {
namespace {

using core::engine_registry;
using core::make_optimizer;
using opt::Registry;
using opt::Request;

std::string thrown_message(const std::string& spec) {
  try {
    (void)make_optimizer(spec);
  } catch (const Precondition_error& error) {
    return error.what();
  }
  ADD_FAILURE() << "spec '" << spec << "' did not throw Precondition_error";
  return {};
}

TEST(Registry_test, RoundTripsNameForEveryEngine) {
  const auto names = engine_registry().names();
  ASSERT_GE(names.size(), 13u);
  for (const auto& name : names) {
    EXPECT_EQ(make_optimizer(name)->name(), name);
  }
}

TEST(Registry_test, UnknownNameListsRegisteredEngines) {
  const std::string message = thrown_message("no-such-engine");
  EXPECT_NE(message.find("unknown optimizer 'no-such-engine'"),
            std::string::npos)
      << message;
  EXPECT_NE(message.find("bnb"), std::string::npos) << message;
  EXPECT_NE(message.find("annealing"), std::string::npos) << message;
}

TEST(Registry_test, MalformedSpecsThrow) {
  // Missing '=', empty key, empty value, empty name, dangling separators.
  for (const std::string spec :
       {"annealing:iterations", "annealing:=5", "annealing:seed=",
        ":seed=1", "annealing:", "annealing:seed=1,", "annealing:,seed=1"}) {
    EXPECT_THROW((void)make_optimizer(spec), Precondition_error) << spec;
  }
}

TEST(Registry_test, DuplicateKeyThrows) {
  const std::string message = thrown_message("annealing:seed=1,seed=2");
  EXPECT_NE(message.find("duplicate option 'seed'"), std::string::npos)
      << message;
}

TEST(Registry_test, UnknownOptionListsValidKeys) {
  const std::string message = thrown_message("annealing:foo=1");
  EXPECT_NE(message.find("has no option 'foo'"), std::string::npos)
      << message;
  EXPECT_NE(message.find("iterations"), std::string::npos) << message;

  // Engines without options say so.
  const std::string none = thrown_message("greedy:foo=1");
  EXPECT_NE(none.find("valid: none"), std::string::npos) << none;
}

TEST(Registry_test, ValueParseFailuresNameEngineAndKey) {
  const std::string message = thrown_message("annealing:iterations=abc");
  EXPECT_NE(message.find("optimizer 'annealing' option 'iterations'"),
            std::string::npos)
      << message;
  EXPECT_THROW((void)make_optimizer("random:seed=-3"), Precondition_error);
  EXPECT_THROW((void)make_optimizer("bnb:subopt=x"), Precondition_error);
  EXPECT_THROW((void)make_optimizer("bnb:warm-start=maybe"),
               Precondition_error);
}

TEST(Registry_test, OutOfRangeValuesThrow) {
  EXPECT_THROW((void)make_optimizer("annealing:cooling=1.5"),
               Precondition_error);
  EXPECT_THROW((void)make_optimizer("annealing:cooling=0"),
               Precondition_error);
  EXPECT_THROW((void)make_optimizer("annealing:initial-temp=-1"),
               Precondition_error);
  EXPECT_THROW((void)make_optimizer("random:samples=0"), Precondition_error);
  EXPECT_THROW((void)make_optimizer("bnb:subopt=-0.5"), Precondition_error);
  EXPECT_THROW((void)make_optimizer("bnb:ebar=weird"), Precondition_error);
  EXPECT_THROW((void)make_optimizer("local-search:swap=0,insert=0"),
               Precondition_error);
}

TEST(Registry_test, OptionsReachTheEngine) {
  const auto instance = test::selective_instance(8, 11);
  Request request;
  request.instance = &instance;
  const auto result = make_optimizer("random:samples=5")->optimize(request);
  EXPECT_EQ(result.stats.complete_plans, 5u);
}

TEST(Registry_test, SpecSeedMatchesOptionsSeed) {
  const auto instance = test::selective_instance(8, 11);
  Request request;
  request.instance = &instance;
  const auto via_spec =
      make_optimizer("random:samples=40,seed=9")->optimize(request);
  opt::Random_sampler_options options;
  options.samples = 40;
  options.seed = 9;
  const auto direct =
      opt::Random_sampler_optimizer(options).optimize(request);
  EXPECT_EQ(via_spec.plan, direct.plan);
  EXPECT_TRUE(test::costs_equal(via_spec.cost, direct.cost));
}

TEST(Registry_test, RequestSeedOverridesSpecSeed) {
  const auto instance = test::selective_instance(9, 3);
  Request request;
  request.instance = &instance;
  request.seed = 42;
  // Different spec seeds, same request seed: identical runs.
  const auto a =
      make_optimizer("random:samples=40,seed=1")->optimize(request);
  const auto b =
      make_optimizer("random:samples=40,seed=2")->optimize(request);
  EXPECT_EQ(a.plan, b.plan);

  // Same spec, different request seeds: streams actually diverge (the
  // sampled plan sets differ; compare the full draw by stats and plan).
  Request other = request;
  other.seed = 43;
  const auto c =
      make_optimizer("random:samples=40,seed=1")->optimize(other);
  EXPECT_EQ(a.stats.complete_plans, c.stats.complete_plans);
  const bool same_draws =
      a.plan == c.plan &&
      a.stats.incumbent_updates == c.stats.incumbent_updates;
  EXPECT_FALSE(same_draws);
}

TEST(Registry_test, DescribeListsEveryName) {
  const std::string description = engine_registry().describe();
  for (const auto& name : engine_registry().names()) {
    EXPECT_NE(description.find(name), std::string::npos) << name;
  }
}

// ---- shared cost-model spec keys -------------------------------------

TEST(Registry_test, SharedPolicyKeyOverridesTheRequestPolicy) {
  const auto instance = test::selective_instance(7, 5);
  Request request;
  request.instance = &instance;

  const auto sequential = make_optimizer("bnb")->optimize(request);
  const auto overlapped =
      make_optimizer("bnb:policy=overlapped")->optimize(request);
  ASSERT_TRUE(sequential.proven_optimal);
  ASSERT_TRUE(overlapped.proven_optimal);
  EXPECT_TRUE(test::costs_equal(
      overlapped.cost,
      model::bottleneck_cost(
          instance, overlapped.plan,
          model::Cost_model::independent(model::Send_policy::overlapped))));
  // And it agrees with setting the model on the request directly.
  Request explicit_request = request;
  explicit_request.model =
      model::Cost_model::independent(model::Send_policy::overlapped);
  const auto direct = make_optimizer("bnb")->optimize(explicit_request);
  EXPECT_TRUE(test::costs_equal(direct.cost, overlapped.cost));
}

TEST(Registry_test, SharedModelKeysBuildTheCorrelatedModel) {
  const std::size_t n = 7;
  const auto instance = test::selective_instance(n, 6);
  Request request;
  request.instance = &instance;

  const auto via_spec =
      make_optimizer("bnb:model=correlated,model-strength=0.6,model-seed=4")
          ->optimize(request);
  Request direct_request = request;
  direct_request.model = model::Cost_model::correlated_seeded(n, 0.6, 4);
  const auto direct = make_optimizer("bnb")->optimize(direct_request);
  ASSERT_TRUE(via_spec.proven_optimal);
  EXPECT_TRUE(test::costs_equal(via_spec.cost, direct.cost));
  EXPECT_EQ(via_spec.plan, direct.plan);
  // A policy-only override keeps the request's correlated structure.
  const auto polarity =
      make_optimizer("dp:policy=overlapped")->optimize(direct_request);
  EXPECT_TRUE(test::costs_equal(
      polarity.cost,
      model::bottleneck_cost(
          instance, polarity.plan,
          direct_request.model.with_policy(model::Send_policy::overlapped))));
  // spec_model_override reports the same effective model the engine used.
  EXPECT_EQ(opt::spec_model_override(
                "bnb:model=correlated,model-strength=0.6,model-seed=4",
                model::Cost_model{}, n),
            direct_request.model);
  EXPECT_EQ(opt::spec_model_override("bnb", direct_request.model, n),
            direct_request.model);
}

TEST(Registry_test, SharedKeyMisuseThrows) {
  EXPECT_NE(thrown_message("bnb:policy=async").find("policy"),
            std::string::npos);
  EXPECT_NE(thrown_message("bnb:model=gaussian").find("model"),
            std::string::npos);
  EXPECT_NE(thrown_message("bnb:model-strength=0.5")
                .find("model=correlated"),
            std::string::npos);
  EXPECT_NE(thrown_message("bnb:model=independent,model-seed=3")
                .find("model-* keys without model=correlated"),
            std::string::npos);
  EXPECT_NE(
      thrown_message("bnb:model=correlated,model-strength=-2")
          .find("non-negative"),
      std::string::npos);
  // Unknown keys still list the engine's own options plus the shared set.
  EXPECT_NE(thrown_message("greedy:widgets=1").find("policy"),
            std::string::npos);
}

}  // namespace
}  // namespace quest
