// Request::warm_start: engines that maintain an incumbent seed it from
// the caller's plan, never return anything costlier, and exact engines
// keep their optimality proof. validate_request rejects infeasible warm
// starts before any engine sees them.

#include <gtest/gtest.h>

#include <vector>

#include "quest/constraints/precedence.hpp"
#include "quest/core/branch_and_bound.hpp"
#include "quest/core/engines.hpp"
#include "quest/opt/annealing.hpp"
#include "quest/opt/greedy.hpp"
#include "quest/opt/local_search.hpp"
#include "quest/model/cost.hpp"
#include "support/helpers.hpp"

namespace quest {
namespace {

using opt::Request;
using opt::Termination;

TEST(Warm_start_test, RejectsIncompleteAndInfeasiblePlans) {
  const auto instance = test::selective_instance(6, 1);
  Request request;
  request.instance = &instance;

  const model::Plan partial(std::vector<model::Service_id>{0, 1, 2});
  request.warm_start = &partial;
  EXPECT_THROW(opt::validate_request(request), Precondition_error);

  constraints::Precedence_graph precedence(instance.size());
  precedence.add_edge(5, 0);  // 5 must precede 0
  const model::Plan violating = model::Plan::identity(instance.size());
  request.warm_start = &violating;
  request.precedence = &precedence;
  EXPECT_THROW(opt::validate_request(request), Precondition_error);

  const model::Plan feasible(
      std::vector<model::Service_id>{5, 0, 1, 2, 3, 4});
  request.warm_start = &feasible;
  EXPECT_NO_THROW(opt::validate_request(request));
}

TEST(Warm_start_test, BnbKeepsTheProofAndNeverDoesWorse) {
  const auto instance = test::selective_instance(10, 5);
  Request cold;
  cold.instance = &instance;
  core::Bnb_optimizer reference;
  const auto exact = reference.optimize(cold);
  ASSERT_TRUE(exact.proven_optimal);

  // Warm-start from the known optimum: the proof must survive, the cost
  // must match, and priming the incumbent can only shrink the search.
  Request warm = cold;
  warm.warm_start = &exact.plan;
  core::Bnb_optimizer warmed;
  const auto result = warmed.optimize(warm);
  EXPECT_TRUE(result.proven_optimal);
  EXPECT_EQ(result.termination, Termination::optimal);
  EXPECT_TRUE(test::costs_equal(result.cost, exact.cost));
  EXPECT_LE(result.stats.nodes_expanded, exact.stats.nodes_expanded);
}

TEST(Warm_start_test, BnbSeedsTheIncumbentBeforeSearching) {
  const auto instance = test::selective_instance(9, 23);
  Request cold;
  cold.instance = &instance;
  const auto exact = core::Bnb_optimizer().optimize(cold);
  ASSERT_TRUE(exact.proven_optimal);

  // The very first streamed incumbent must be the warm plan itself.
  Request warm = cold;
  warm.warm_start = &exact.plan;
  double first_cost = -1.0;
  warm.on_incumbent = [&](const model::Plan&, double cost,
                          const opt::Search_stats&) {
    if (first_cost < 0.0) first_cost = cost;
  };
  const auto result = core::Bnb_optimizer().optimize(warm);
  EXPECT_TRUE(test::costs_equal(first_cost, exact.cost));
  EXPECT_TRUE(test::costs_equal(result.cost, exact.cost));
}

TEST(Warm_start_test, LocalSearchPolishesACheaperWarmPlan) {
  // When the warm plan beats the greedy seed, the descent starts from
  // (and streams) the warm plan.
  const auto instance = test::selective_instance(12, 9);
  Request cold;
  cold.instance = &instance;
  const auto exact = core::Bnb_optimizer().optimize(cold);
  ASSERT_TRUE(exact.proven_optimal);

  Request warm = cold;
  warm.warm_start = &exact.plan;
  double first_cost = -1.0;
  warm.on_incumbent = [&](const model::Plan&, double cost,
                          const opt::Search_stats&) {
    if (first_cost < 0.0) first_cost = cost;
  };
  opt::Local_search_optimizer search;
  const auto result = search.optimize(warm);
  EXPECT_TRUE(test::costs_equal(first_cost, exact.cost));
  EXPECT_TRUE(test::costs_equal(result.cost, exact.cost));
  EXPECT_TRUE(result.plan.is_permutation_of(instance.size()));
}

TEST(Warm_start_test, PoorWarmStartCannotLowerTheEngineFloor) {
  // A bad warm plan competes with — never replaces — the greedy seed:
  // the warm run matches the cold run exactly (same start, and for
  // annealing the same RNG stream).
  const auto instance = test::selective_instance(12, 31);
  const model::Plan bad = model::Plan::identity(instance.size());
  const double bad_cost = model::bottleneck_cost(instance, bad);

  // Scenario precondition: the identity order really is worse than the
  // engines' own greedy seed on this instance.
  Request probe;
  probe.instance = &instance;
  const auto greedy = opt::Greedy_optimizer().optimize(probe);
  ASSERT_LT(greedy.cost, bad_cost);

  for (const char* spec :
       {"local-search", "annealing:iterations=500"}) {
    Request cold;
    cold.instance = &instance;
    cold.seed = 7;
    const auto cold_result = core::make_optimizer(spec)->optimize(cold);

    Request warm = cold;
    warm.warm_start = &bad;
    const auto warm_result = core::make_optimizer(spec)->optimize(warm);
    EXPECT_TRUE(test::costs_equal(warm_result.cost, cold_result.cost))
        << spec;
    EXPECT_LE(warm_result.cost, bad_cost + 1e-12) << spec;
  }
}

TEST(Warm_start_test, FlowsThroughTheRegistryEngines) {
  // The registry path (what quest_serve uses) must forward warm starts:
  // portfolio and multistart copy the request into their sub-engines.
  const auto instance = test::selective_instance(10, 13);
  Request cold;
  cold.instance = &instance;
  const auto exact = core::make_optimizer("bnb")->optimize(cold);
  ASSERT_TRUE(exact.proven_optimal);

  for (const char* spec : {"portfolio", "multistart:restarts=1",
                           "local-search", "annealing:iterations=200"}) {
    Request warm = cold;
    warm.seed = 3;
    warm.warm_start = &exact.plan;
    const auto result = core::make_optimizer(spec)->optimize(warm);
    EXPECT_LE(result.cost, exact.cost + 1e-12) << spec;
    EXPECT_TRUE(result.plan.is_permutation_of(instance.size())) << spec;
  }
}

}  // namespace
}  // namespace quest
