// Smoke and consistency tests for the real-clock configuration of the
// choreography runtime (deadline sleeps on OS threads). Wall-clock
// assertions are kept loose — CI machines are noisy — and this binary is
// registered RUN_SERIAL so `ctest -j` does not share cores with it; the
// precise, deterministic model-vs-measured assertions live in
// executor_test (virtual clock) and the model-vs-wall comparison in bench
// E10.

#include <gtest/gtest.h>

#include "quest/model/cost.hpp"
#include "quest/runtime/choreography.hpp"
#include "support/helpers.hpp"

namespace quest {
namespace {

using model::Instance;
using model::Plan;
using model::Service;
using runtime::Clock_mode;
using runtime::Runtime_config;
using runtime::execute;

Runtime_config small_config() {
  Runtime_config config;
  config.input_tuples = 150;
  config.block_size = 16;
  config.time_scale_us = 30.0;
  return config;
}

TEST(Choreography_test, DeliversDeterministicTupleCount) {
  const Instance instance = test::selective_instance(5, 4);
  const auto config = small_config();
  const auto result = execute(instance, Plan::identity(5), config);
  double expected = static_cast<double>(config.input_tuples);
  for (model::Service_id id = 0; id < 5; ++id) {
    expected *= instance.selectivity(id);
  }
  EXPECT_NEAR(static_cast<double>(result.tuples_delivered), expected, 6.0);
  EXPECT_GT(result.wall_seconds, 0.0);
  EXPECT_GT(result.per_tuple_cost_units, 0.0);
  ASSERT_EQ(result.busy_fraction.size(), 5u);
}

TEST(Choreography_test, WallClockIsAtLeastTheModelLowerBound) {
  // The bottleneck service alone must busy-spin for
  // input * predicted_cost time units, so wall time cannot beat it.
  const Instance instance = test::selective_instance(4, 11);
  const auto config = small_config();
  const auto result = execute(instance, Plan::identity(4), config);
  const double lower_bound_seconds =
      result.predicted_cost * static_cast<double>(config.input_tuples) *
      config.time_scale_us * 1e-6;
  EXPECT_GE(result.wall_seconds, lower_bound_seconds * 0.95);
}

TEST(Choreography_test, PerTupleCostTracksPrediction) {
  const Instance instance = test::selective_instance(4, 7);
  Runtime_config config;
  config.input_tuples = 400;
  config.block_size = 25;
  config.time_scale_us = 60.0;
  const auto result = execute(instance, Plan::identity(4), config);
  // Wall time includes wake-up latency and scheduling noise; demand the
  // right ballpark (within 2x) rather than tight agreement here.
  EXPECT_GT(result.per_tuple_cost_units, result.predicted_cost * 0.8);
  EXPECT_LT(result.per_tuple_cost_units, result.predicted_cost * 2.0);
}

TEST(Choreography_test, BusyFractionsAreWellFormed) {
  // Regression: the end timestamp used to be captured before join, so a
  // worker still finishing sink-side transfer work could report a busy
  // fraction above 1. The interval now contains every worker's lifetime.
  const Instance instance = test::selective_instance(4, 7);
  Runtime_config config;
  config.input_tuples = 300;
  config.block_size = 16;
  config.time_scale_us = 40.0;
  const auto result = execute(instance, Plan::identity(4), config);
  ASSERT_EQ(result.busy_fraction.size(), 4u);
  for (const double fraction : result.busy_fraction) {
    EXPECT_GE(fraction, 0.0);
    EXPECT_LE(fraction, 1.0);
  }
}

TEST(Choreography_test, PerTupleCostAmortizesFillDrain) {
  // Regression for the per-block deadline clamp: the measured per-tuple
  // cost must converge toward the Eq. 1 prediction as pipeline fill/drain
  // overhead is amortized over more input. The buggy accounting baked one
  // scheduler wake-up into the timeline per block, an overhead that does
  // not amortize (and explodes under CPU contention). Ported to the
  // virtual-time backend: the fill/drain term is emulated time either
  // way, and virtual time makes the assertion deterministic instead of
  // "stable even with 4 CPU hogs".
  const Instance instance = test::selective_instance(4, 7);
  Runtime_config config;
  config.block_size = 25;
  config.time_scale_us = 60.0;
  config.clock_mode = Clock_mode::virtual_time;

  config.input_tuples = 200;
  const auto small = execute(instance, Plan::identity(4), config);
  config.input_tuples = 1'600;
  const auto large = execute(instance, Plan::identity(4), config);

  ASSERT_GT(small.predicted_cost, 0.0);
  const double excess_small =
      small.per_tuple_cost_units / small.predicted_cost - 1.0;
  const double excess_large =
      large.per_tuple_cost_units / large.predicted_cost - 1.0;
  EXPECT_GT(excess_large, -1e-9);  // cannot beat the model lower bound
  EXPECT_LT(excess_large, 0.75);
  EXPECT_LT(excess_large, 0.5 * excess_small);
}

TEST(Choreography_test, RealAndVirtualBackendsAgreeOnRanking) {
  // A pair of plans whose Eq. 1 costs differ by ~3x: ordering the cheap
  // aggressive filter first starves the expensive stage. Both clock
  // backends must rank them the same way.
  const Instance instance(
      {{0.2, 0.2, "filter"}, {2.0, 1.0, "heavy"}, {0.3, 0.9, "tail"}},
      Matrix<double>::square(3, 0.0));
  const Plan good({0, 1, 2});
  const Plan bad({1, 0, 2});
  ASSERT_GT(model::bottleneck_cost(instance, bad),
            model::bottleneck_cost(instance, good) * 1.5);

  Runtime_config config = small_config();
  config.input_tuples = 250;
  for (const Clock_mode mode :
       {Clock_mode::real, Clock_mode::virtual_time}) {
    config.clock_mode = mode;
    const auto fast = execute(instance, good, config);
    const auto slow = execute(instance, bad, config);
    EXPECT_LT(fast.wall_seconds, slow.wall_seconds)
        << "clock mode " << static_cast<int>(mode);
  }
}

TEST(Choreography_test, ExpandingPipelineDeliversMore) {
  Rng rng(3);
  workload::Uniform_spec spec;
  spec.n = 3;
  spec.selectivity_min = 1.4;
  spec.selectivity_max = 1.8;
  spec.cost_min = 0.2;
  spec.cost_max = 0.5;
  spec.transfer_min = 0.05;
  spec.transfer_max = 0.2;
  const Instance instance = workload::make_uniform(spec, rng);
  Runtime_config config = small_config();
  config.input_tuples = 200;
  const auto result = execute(instance, Plan::identity(3), config);
  EXPECT_GT(result.tuples_delivered, 200u);
}

TEST(Choreography_test, BoundedQueuesStillComplete) {
  // Tight queues force back-pressure; the run must still drain.
  const Instance instance = test::selective_instance(5, 9);
  Runtime_config config = small_config();
  config.queue_capacity_blocks = 1;
  config.input_tuples = 150;
  const auto result = execute(instance, Plan::identity(5), config);
  EXPECT_GT(result.tuples_delivered, 0u);
}

TEST(Choreography_test, SingleService) {
  const Instance instance({{0.5, 1.0, "relay"}},
                          Matrix<double>::square(1, 0.0));
  Runtime_config config = small_config();
  config.input_tuples = 100;
  const auto result = execute(instance, Plan({0}), config);
  EXPECT_EQ(result.tuples_delivered, 100u);
}

TEST(Choreography_test, RejectsMalformedConfig) {
  const Instance instance = test::selective_instance(3, 1);
  Runtime_config config;
  config.input_tuples = 0;
  EXPECT_THROW(execute(instance, Plan::identity(3), config),
               Precondition_error);
  config.input_tuples = 10;
  config.time_scale_us = 0.0;
  EXPECT_THROW(execute(instance, Plan::identity(3), config),
               Precondition_error);
  config.time_scale_us = 1.0;
  config.queue_capacity_blocks = 0;
  EXPECT_THROW(execute(instance, Plan::identity(3), config),
               Precondition_error);
  EXPECT_THROW(execute(instance, Plan({0}), config), Precondition_error);
}

}  // namespace
}  // namespace quest
