// Tests for the batched multi-service executor and its clock abstraction.
// Everything here runs on the virtual clock: no sleeps, no OS scheduler in
// the timeline, bit-for-bit deterministic results — so this binary is safe
// under `ctest -j` at any load, and it can execute plans with hundreds of
// services on a handful of workers (the paper's unbounded-services
// setting, which the thread-per-service backend could not reach).

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "quest/common/matrix.hpp"
#include "quest/model/cost.hpp"
#include "quest/runtime/choreography.hpp"
#include "quest/runtime/clock.hpp"
#include "quest/runtime/executor.hpp"
#include "support/helpers.hpp"

namespace quest {
namespace {

using model::Instance;
using model::Plan;
using model::Service;
using runtime::Clock_mode;
using runtime::Runtime_config;
using runtime::Runtime_result;
using runtime::execute;

Runtime_config virtual_config(std::size_t workers = 4) {
  Runtime_config config;
  config.clock_mode = Clock_mode::virtual_time;
  config.worker_count = workers;
  config.input_tuples = 500;
  config.block_size = 16;
  config.time_scale_us = 30.0;
  return config;
}

/// A relay pipeline (selectivity 1 everywhere) with one expensive stage:
/// the Eq. 1 bottleneck is unambiguous and fill/drain is cheap relative to
/// steady state, which makes the prediction sharp.
Instance relay_pipeline(std::size_t n, std::size_t bottleneck_position,
                        double bottleneck_cost, double base_cost,
                        double transfer) {
  std::vector<Service> services(n);
  for (std::size_t i = 0; i < n; ++i) {
    services[i].cost = i == bottleneck_position ? bottleneck_cost : base_cost;
    services[i].selectivity = 1.0;
  }
  Matrix<double> links = Matrix<double>::square(n, transfer);
  for (std::size_t i = 0; i < n; ++i) links(i, i) = 0.0;
  return Instance(std::move(services), std::move(links));
}

TEST(Execution_clock_test, VirtualClockTracksMakespan) {
  const auto clock =
      runtime::make_execution_clock(Clock_mode::virtual_time);
  EXPECT_EQ(clock->run_us(), 0.0);
  clock->work_completed(120.0);
  clock->work_completed(40.0);  // an earlier instant must not regress it
  EXPECT_EQ(clock->run_us(), 120.0);
  clock->work_completed(300.5);
  EXPECT_EQ(clock->run_us(), 300.5);
}

TEST(Execution_clock_test, RealClockMeasuresElapsedTime) {
  const auto clock = runtime::make_execution_clock(Clock_mode::real);
  clock->work_completed(200.0);  // sleeps until +200us of wall time
  EXPECT_GE(clock->run_us(), 200.0);
  clock->work_completed(50.0);  // already past: returns immediately
}

TEST(Executor_test, ResolvesWorkerCounts) {
  Runtime_config config;  // defaults: worker_count 0, real clock
  // Real-clock auto keeps the thread-per-service behavior.
  EXPECT_EQ(runtime::resolve_worker_count(config, 7), 7u);
  config.clock_mode = Clock_mode::virtual_time;
  // Virtual auto never exceeds the service count.
  EXPECT_LE(runtime::resolve_worker_count(config, 3), 3u);
  EXPECT_GE(runtime::resolve_worker_count(config, 3), 1u);
  // An explicit count is always honored.
  config.worker_count = 5;
  EXPECT_EQ(runtime::resolve_worker_count(config, 300), 5u);
}

TEST(Executor_test, LargePlanOnSmallPoolTracksBottleneckPrediction) {
  // The acceptance bar for the scaling work: a 256-service plan executes
  // on 8 workers, and the measured per-tuple cost lands within 25% of the
  // Eq. 1 bottleneck prediction.
  const std::size_t n = 256;
  const Instance instance = relay_pipeline(n, n / 2, 2.0, 0.2, 0.05);

  Runtime_config config = virtual_config(8);
  config.input_tuples = 20'000;
  config.block_size = 8;
  config.time_scale_us = 50.0;
  const auto result = execute(instance, Plan::identity(n), config);

  ASSERT_GT(result.predicted_cost, 0.0);
  EXPECT_NEAR(result.per_tuple_cost_units / result.predicted_cost, 1.0,
              0.25);
  // Relay pipeline: every tuple survives.
  EXPECT_EQ(result.tuples_delivered, config.input_tuples);
  // The bottleneck stage dominates the run; everyone stays within it.
  ASSERT_EQ(result.busy_fraction.size(), n);
  EXPECT_GT(result.busy_fraction[n / 2], 0.9);
  for (const double fraction : result.busy_fraction) {
    EXPECT_GE(fraction, 0.0);
    EXPECT_LE(fraction, 1.0);
  }
}

TEST(Executor_test, VirtualRunsAreDeterministic) {
  const Instance instance = test::selective_instance(6, 3);
  const auto config = virtual_config();
  const auto first = execute(instance, Plan::identity(6), config);
  const auto second = execute(instance, Plan::identity(6), config);
  EXPECT_EQ(first.wall_seconds, second.wall_seconds);
  EXPECT_EQ(first.per_tuple_cost_units, second.per_tuple_cost_units);
  EXPECT_EQ(first.tuples_delivered, second.tuples_delivered);
  EXPECT_EQ(first.busy_fraction, second.busy_fraction);
}

TEST(Executor_test, WorkerCountDoesNotChangeVirtualResults) {
  // The emulated timeline is a pure function of the plan and config: how
  // many workers race through it must not be observable.
  const Instance instance = test::expanding_instance(7, 11);
  auto config = virtual_config(1);
  const auto solo = execute(instance, Plan::identity(7), config);
  config.worker_count = 8;
  const auto pooled = execute(instance, Plan::identity(7), config);
  EXPECT_EQ(solo.wall_seconds, pooled.wall_seconds);
  EXPECT_EQ(solo.tuples_delivered, pooled.tuples_delivered);
  EXPECT_EQ(solo.busy_fraction, pooled.busy_fraction);
}

TEST(Executor_test, DeliversDeterministicTupleCount) {
  const Instance instance = test::selective_instance(5, 4);
  const auto config = virtual_config();
  const auto result = execute(instance, Plan::identity(5), config);
  double expected = static_cast<double>(config.input_tuples);
  for (model::Service_id id = 0; id < 5; ++id) {
    expected *= instance.selectivity(id);
  }
  EXPECT_NEAR(static_cast<double>(result.tuples_delivered), expected, 6.0);
  EXPECT_GT(result.wall_seconds, 0.0);
}

TEST(Executor_test, MakespanIsAtLeastTheModelLowerBound) {
  // The bottleneck service alone accounts for input * predicted_cost of
  // emulated time, so the virtual makespan cannot beat it — and with no
  // scheduling noise in the timeline this bound is exact, not a 0.95
  // tolerance band.
  const Instance instance = test::selective_instance(4, 11);
  const auto config = virtual_config();
  const auto result = execute(instance, Plan::identity(4), config);
  const double lower_bound_seconds =
      result.predicted_cost * static_cast<double>(config.input_tuples) *
      config.time_scale_us * 1e-6;
  EXPECT_GE(result.wall_seconds, lower_bound_seconds);
}

TEST(Executor_test, TightQueuesAndExpandingPipelinesStillComplete) {
  // Capacity-1 queues force constant parking; the run must still drain,
  // and an expanding pipeline (selectivity > 1, so each block fans out)
  // must deliver more than it consumed.
  const Instance instance = test::expanding_instance(6, 2);
  auto config = virtual_config(2);
  config.queue_capacity_blocks = 1;
  const auto result = execute(instance, Plan::identity(6), config);
  EXPECT_GT(result.tuples_delivered, 0u);

  Rng rng(3);
  workload::Uniform_spec spec;
  spec.n = 3;
  spec.selectivity_min = 1.4;
  spec.selectivity_max = 1.8;
  spec.cost_min = 0.2;
  spec.cost_max = 0.5;
  spec.transfer_min = 0.05;
  spec.transfer_max = 0.2;
  const Instance expanding = workload::make_uniform(spec, rng);
  auto grow_config = virtual_config();
  grow_config.input_tuples = 200;
  const auto grown = execute(expanding, Plan::identity(3), grow_config);
  EXPECT_GT(grown.tuples_delivered, 200u);
}

TEST(Executor_test, SinkTransferIsChargedToTheLastService) {
  // Instances with a result link back to the originator: the last
  // service's term includes the sink transfer, and the measured per-tuple
  // cost must track the prediction that includes it.
  const Instance instance = test::sink_instance(4, 5);
  auto config = virtual_config();
  config.input_tuples = 4'000;
  const auto result = execute(instance, Plan::identity(4), config);
  EXPECT_NEAR(result.per_tuple_cost_units / result.predicted_cost, 1.0,
              0.15);
}

TEST(Executor_test, VirtualAndRealBackendsShareTheResultContract) {
  // Same plan through both clocks: identical delivered count (the
  // deterministic selectivity accumulator is clock-independent), same
  // busy-fraction shape, and per-tuple costs in the same ballpark.
  const Instance instance = test::selective_instance(4, 7);
  Runtime_config config;
  config.input_tuples = 300;
  config.block_size = 16;
  config.time_scale_us = 40.0;
  config.clock_mode = Clock_mode::virtual_time;
  const auto virt = execute(instance, Plan::identity(4), config);
  config.clock_mode = Clock_mode::real;
  const auto real = execute(instance, Plan::identity(4), config);
  EXPECT_EQ(virt.tuples_delivered, real.tuples_delivered);
  ASSERT_EQ(virt.busy_fraction.size(), real.busy_fraction.size());
  // Real wall time includes whatever noise the host adds on top of the
  // emulated timeline, so it can only be slower.
  EXPECT_GE(real.per_tuple_cost_units, virt.per_tuple_cost_units * 0.95);
}

}  // namespace
}  // namespace quest
