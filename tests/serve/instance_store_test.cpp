// Instance_store: registration, replacement, lookup lifetime, and
// fingerprint computation.

#include "quest/serve/instance_store.hpp"

#include <gtest/gtest.h>

#include "quest/io/fingerprint.hpp"
#include "support/helpers.hpp"

namespace quest {
namespace {

using serve::Instance_store;

TEST(Instance_store_test, PutGetRoundTrip) {
  Instance_store store;
  bool replaced = true;
  const auto entry =
      store.put("prod", test::selective_instance(8, 1), std::nullopt,
                &replaced);
  EXPECT_FALSE(replaced);
  EXPECT_EQ(entry->name, "prod");
  EXPECT_EQ(entry->fingerprint, io::fingerprint(entry->instance));
  EXPECT_EQ(entry->precedence_ptr(), nullptr);

  const auto found = store.get("prod");
  ASSERT_NE(found, nullptr);
  EXPECT_EQ(found.get(), entry.get());
  EXPECT_EQ(store.get("missing"), nullptr);
  EXPECT_EQ(store.size(), 1u);
}

TEST(Instance_store_test, ReplacementKeepsOldEntriesAlive) {
  Instance_store store;
  const auto first = store.put("x", test::selective_instance(6, 1),
                               std::nullopt);
  bool replaced = false;
  const auto second =
      store.put("x", test::selective_instance(6, 2), std::nullopt, &replaced);
  EXPECT_TRUE(replaced);
  EXPECT_EQ(store.size(), 1u);
  EXPECT_EQ(store.get("x").get(), second.get());
  // The first entry is still usable by an in-flight job holding it.
  EXPECT_EQ(first->instance.size(), 6u);
  EXPECT_NE(first->fingerprint, second->fingerprint);
}

TEST(Instance_store_test, PrecedenceIsStoredAndFingerprinted) {
  Instance_store store;
  const auto instance = test::selective_instance(5, 3);
  constraints::Precedence_graph precedence(instance.size());
  precedence.add_edge(0, 4);
  const auto bare = store.put("bare", instance, std::nullopt);
  const auto constrained = store.put("constrained", instance, precedence);
  ASSERT_NE(constrained->precedence_ptr(), nullptr);
  EXPECT_TRUE(constrained->precedence_ptr()->has_edge(0, 4));
  EXPECT_NE(bare->fingerprint, constrained->fingerprint);
}

TEST(Instance_store_test, NamesInRegistrationOrder) {
  Instance_store store;
  store.put("b", test::selective_instance(4, 1), std::nullopt);
  store.put("a", test::selective_instance(4, 2), std::nullopt);
  store.put("b", test::selective_instance(4, 3), std::nullopt);  // replace
  EXPECT_EQ(store.names(), (std::vector<std::string>{"b", "a"}));
}

}  // namespace
}  // namespace quest
