// Plan_cache: exact-tier key semantics (fingerprint, cost-model key,
// spec, budget class, seed), the proven-optimal budget-class exemption,
// LRU eviction with counters, budget-class quantization, the warm-start
// tier, and — critically — that neither tier ever serves a plan across
// differing cost models or send policies.

#include "quest/serve/plan_cache.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace quest {
namespace {

using serve::Cache_key;
using serve::Cached_plan;
using serve::Plan_cache;

const std::string sequential_key = model::Cost_model().key();
const std::string overlapped_key =
    model::Cost_model::independent(model::Send_policy::overlapped).key();

Cache_key key(std::uint64_t fingerprint, const std::string& spec,
              const std::string& budget = "w:*|t:*|c:0",
              std::uint64_t seed = 0) {
  return Cache_key{fingerprint, sequential_key, spec, budget, seed};
}

Cached_plan plan_of_cost(double cost, bool proven_optimal = false) {
  return Cached_plan{model::Plan(std::vector<model::Service_id>{0, 1}), cost,
                     opt::Termination::completed, proven_optimal};
}

TEST(Budget_class_test, QuantizesDeadlinesAndWorkLimits) {
  opt::Budget unlimited;
  EXPECT_EQ(serve::budget_class(unlimited), "w:*|t:*|c:0");

  opt::Budget a, b, c;
  a.time_limit_seconds = 0.4;   // 400 ms
  b.time_limit_seconds = 0.51;  // 510 ms — same power-of-two bucket
  c.time_limit_seconds = 4.0;   // 4 s — a different one
  EXPECT_EQ(serve::budget_class(a), serve::budget_class(b));
  EXPECT_NE(serve::budget_class(a), serve::budget_class(c));

  opt::Budget w1, w2, w3;
  w1.node_limit = 700;
  w2.node_limit = 1000;  // (512, 1024] with 700
  w3.node_limit = 100000;
  EXPECT_EQ(serve::budget_class(w1), serve::budget_class(w2));
  EXPECT_NE(serve::budget_class(w1), serve::budget_class(w3));

  // Cost targets are exact: the slightest difference changes the class.
  opt::Budget t1, t2;
  t1.cost_target = 1.5;
  t2.cost_target = 1.5 + 1e-12;
  EXPECT_NE(serve::budget_class(t1), serve::budget_class(t2));
}

TEST(Plan_cache_test, HitRequiresTheFullKey) {
  Plan_cache cache(8);
  cache.insert(key(1, "bnb"), plan_of_cost(2.0));

  EXPECT_TRUE(cache.lookup(key(1, "bnb")).has_value());
  EXPECT_FALSE(cache.lookup(key(2, "bnb")).has_value());       // fingerprint
  EXPECT_FALSE(cache.lookup(key(1, "dp")).has_value());        // spec
  EXPECT_FALSE(cache.lookup(key(1, "bnb", "w:3|t:*|c:0")).has_value());
  EXPECT_FALSE(cache.lookup(key(1, "bnb", "w:*|t:*|c:0", 7)).has_value());

  Cache_key other_policy = key(1, "bnb");
  other_policy.model_key = overlapped_key;
  EXPECT_FALSE(cache.lookup(other_policy).has_value());

  EXPECT_EQ(cache.lookups(), 6u);
  EXPECT_EQ(cache.hits(), 1u);
}

TEST(Plan_cache_test, ProvenOptimalMatchesAnyBudgetClass) {
  Plan_cache cache(8);
  cache.insert(key(1, "bnb", "w:*|t:9|c:0"), plan_of_cost(2.0, true));
  // Same problem/engine/seed under a different budget: optimal is optimal.
  const auto hit = cache.lookup(key(1, "bnb", "w:4|t:*|c:0"));
  ASSERT_TRUE(hit.has_value());
  EXPECT_TRUE(hit->proven_optimal);
  // But not across engines or seeds.
  EXPECT_FALSE(cache.lookup(key(1, "dp", "w:4|t:*|c:0")).has_value());
  EXPECT_FALSE(
      cache.lookup(key(1, "bnb", "w:4|t:*|c:0", 5)).has_value());
}

TEST(Plan_cache_test, NonOptimalEntriesStayInTheirBudgetClass) {
  Plan_cache cache(8);
  cache.insert(key(1, "annealing", "w:*|t:9|c:0"), plan_of_cost(2.0, false));
  EXPECT_FALSE(cache.lookup(key(1, "annealing", "w:*|t:12|c:0")).has_value());
  EXPECT_TRUE(cache.lookup(key(1, "annealing", "w:*|t:9|c:0")).has_value());
}

TEST(Plan_cache_test, LruEvictionAtCapacity) {
  Plan_cache cache(2);
  cache.insert(key(1, "a"), plan_of_cost(1.0));
  cache.insert(key(2, "a"), plan_of_cost(2.0));
  ASSERT_TRUE(cache.lookup(key(1, "a")).has_value());  // 1 is now fresher
  cache.insert(key(3, "a"), plan_of_cost(3.0));        // evicts 2
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.evictions(), 1u);
  EXPECT_TRUE(cache.lookup(key(1, "a")).has_value());
  EXPECT_FALSE(cache.lookup(key(2, "a")).has_value());
  EXPECT_TRUE(cache.lookup(key(3, "a")).has_value());
}

TEST(Plan_cache_test, ReinsertKeepsTheBetterResult) {
  // Concurrent identical requests may race their inserts (wall-clock
  // budgets make engines nondeterministic under load): an improvement
  // replaces the entry, a worse late finisher never clobbers it.
  Plan_cache cache(4);
  cache.insert(key(1, "a"), plan_of_cost(5.0));
  cache.insert(key(1, "a"), plan_of_cost(3.0));
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_DOUBLE_EQ(cache.lookup(key(1, "a"))->cost, 3.0);
  cache.insert(key(1, "a"), plan_of_cost(4.5));
  EXPECT_DOUBLE_EQ(cache.lookup(key(1, "a"))->cost, 3.0);
  // A proven-optimal result wins over an unproven equal-or-worse one.
  Cached_plan proven = plan_of_cost(3.0, /*proven_optimal=*/true);
  cache.insert(key(1, "a"), proven);
  EXPECT_TRUE(cache.lookup(key(1, "a"))->proven_optimal);
}

TEST(Plan_cache_test, WarmStartTierTracksTheBestKnownPlan) {
  Plan_cache cache(8);
  EXPECT_FALSE(
      cache.best_known(1, sequential_key).has_value());

  cache.insert(key(1, "annealing"), plan_of_cost(5.0));
  cache.insert(key(1, "local-search", "w:2|t:*|c:0"), plan_of_cost(3.0));
  cache.insert(key(1, "random"), plan_of_cost(9.0));  // worse: ignored

  const auto best = cache.best_known(1, sequential_key);
  ASSERT_TRUE(best.has_value());
  EXPECT_DOUBLE_EQ(best->cost, 3.0);
  // Tiers are per (fingerprint, model key).
  EXPECT_FALSE(
      cache.best_known(1, overlapped_key).has_value());
  EXPECT_FALSE(
      cache.best_known(2, sequential_key).has_value());
}

TEST(Plan_cache_test, WarmStartTierSurvivesExactTierEviction) {
  // The best-known plan outlives its exact-tier entry: even after "a"'s
  // result is evicted, new requests still warm-start from it.
  Plan_cache cache(2);
  cache.insert(key(1, "a"), plan_of_cost(2.0));
  cache.insert(key(1, "b"), plan_of_cost(3.0));
  cache.insert(key(2, "c"), plan_of_cost(4.0));  // evicts key(1, "a")
  EXPECT_FALSE(cache.lookup(key(1, "a")).has_value());
  const auto best = cache.best_known(1, sequential_key);
  ASSERT_TRUE(best.has_value());
  EXPECT_DOUBLE_EQ(best->cost, 2.0);
}

TEST(Plan_cache_test, RememberBestFeedsOnlyTheWarmTier) {
  // The path cancelled runs take: the plan becomes a warm start but is
  // never an instant answer.
  Plan_cache cache(4);
  Cached_plan cancelled = plan_of_cost(2.0);
  cancelled.termination = opt::Termination::cancelled;
  cache.remember_best(1, sequential_key, cancelled);
  EXPECT_FALSE(cache.lookup(key(1, "a")).has_value());
  EXPECT_EQ(cache.size(), 0u);
  const auto best = cache.best_known(1, sequential_key);
  ASSERT_TRUE(best.has_value());
  EXPECT_DOUBLE_EQ(best->cost, 2.0);
}

TEST(Plan_cache_test, WarmStartTierIsBounded) {
  // A daemon fed an endless stream of distinct problems must not grow
  // without bound: the warm tier holds at most `capacity` problems.
  Plan_cache cache(2);
  for (std::uint64_t fingerprint = 1; fingerprint <= 5; ++fingerprint) {
    cache.remember_best(fingerprint, sequential_key,
                        plan_of_cost(1.0 * static_cast<double>(fingerprint)));
  }
  // The oldest problems aged out; the two newest are warm-startable.
  EXPECT_FALSE(
      cache.best_known(1, sequential_key).has_value());
  EXPECT_FALSE(
      cache.best_known(3, sequential_key).has_value());
  EXPECT_TRUE(
      cache.best_known(4, sequential_key).has_value());
  EXPECT_TRUE(
      cache.best_known(5, sequential_key).has_value());
}

// The cross-model contamination regression (cost-model redesign): a
// plan cached under one cost model must be invisible — in both tiers —
// to requests under any other model, even for the same instance, engine,
// budget class and seed. Costs are not comparable across models.
TEST(Plan_cache_test, ExactTierRefusesHitsAcrossCostModels) {
  Plan_cache cache(8);
  const auto correlated =
      model::Cost_model::correlated_seeded(6, 0.5, 7);
  const auto correlated_other_seed =
      model::Cost_model::correlated_seeded(6, 0.5, 8);

  Cache_key independent_key = key(1, "bnb");
  Cache_key correlated_key = key(1, "bnb");
  correlated_key.model_key = correlated.key();

  cache.insert(independent_key, plan_of_cost(2.0, /*proven_optimal=*/true));
  cache.insert(correlated_key, plan_of_cost(3.0, /*proven_optimal=*/true));

  // Each model sees exactly its own entry (proven-optimal entries are
  // budget-exempt but never model-exempt).
  EXPECT_DOUBLE_EQ(cache.lookup(independent_key)->cost, 2.0);
  EXPECT_DOUBLE_EQ(cache.lookup(correlated_key)->cost, 3.0);

  Cache_key other = key(1, "bnb");
  other.model_key = correlated_other_seed.key();
  EXPECT_FALSE(cache.lookup(other).has_value());
  other.model_key = overlapped_key;
  EXPECT_FALSE(cache.lookup(other).has_value());
}

TEST(Plan_cache_test, WarmStartTierRefusesHitsAcrossCostModels) {
  Plan_cache cache(8);
  const std::string correlated_key =
      model::Cost_model::correlated_seeded(6, 0.5, 7).key();

  cache.remember_best(1, sequential_key, plan_of_cost(2.0));
  cache.remember_best(1, correlated_key, plan_of_cost(5.0));

  // Neither model's warm start leaks into the other, and the cheaper
  // independent plan never masquerades as a correlated incumbent.
  EXPECT_DOUBLE_EQ(cache.best_known(1, sequential_key)->cost, 2.0);
  EXPECT_DOUBLE_EQ(cache.best_known(1, correlated_key)->cost, 5.0);
  EXPECT_FALSE(cache.best_known(1, overlapped_key).has_value());

  // Distinct correlation parameters are distinct models.
  const std::string other_strength =
      model::Cost_model::correlated_seeded(6, 0.9, 7).key();
  EXPECT_FALSE(cache.best_known(1, other_strength).has_value());
}

}  // namespace
}  // namespace quest
