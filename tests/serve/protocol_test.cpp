// The quest_serve wire protocol codec: op parsing (happy paths, defaults,
// malformed input diagnostics) and event shapes.

#include "quest/serve/protocol.hpp"

#include <gtest/gtest.h>

#include <string>
#include <variant>

#include "quest/io/instance_io.hpp"
#include "support/helpers.hpp"

namespace quest {
namespace {

using namespace quest::serve;

std::string instance_json(std::size_t n, std::uint64_t seed) {
  return io::to_json(test::selective_instance(n, seed)).dump();
}

TEST(Protocol_test, ParsesRegister) {
  const std::string line = std::string(R"({"op":"register","name":"prod",)") +
                           R"("instance":)" + instance_json(6, 1) + "}";
  const Op op = parse_op(line);
  const auto* reg = std::get_if<Register_op>(&op);
  ASSERT_NE(reg, nullptr);
  EXPECT_EQ(reg->name, "prod");
  EXPECT_EQ(reg->document.instance.size(), 6u);
}

TEST(Protocol_test, ParsesOptimizeWithDefaults) {
  const Op op = parse_op(R"({"op":"optimize","id":"r1","instance":"prod"})");
  const auto* optimize = std::get_if<Optimize_op>(&op);
  ASSERT_NE(optimize, nullptr);
  EXPECT_EQ(optimize->id, "r1");
  EXPECT_EQ(optimize->instance_name, "prod");
  EXPECT_FALSE(optimize->inline_instance.has_value());
  EXPECT_EQ(optimize->optimizer, "portfolio");
  EXPECT_EQ(optimize->budget.node_limit, 0u);
  EXPECT_EQ(optimize->budget.time_limit_seconds, 0.0);
  EXPECT_EQ(optimize->seed, 0u);
  EXPECT_EQ(optimize->model.policy, model::Send_policy::sequential);
  EXPECT_EQ(optimize->model.structure,
            model::Selectivity_structure::independent);
  EXPECT_FALSE(optimize->stream);
  EXPECT_TRUE(optimize->cache);
  EXPECT_FALSE(optimize->execute.has_value());
}

TEST(Protocol_test, ParsesOptimizeFully) {
  const std::string line =
      std::string(R"({"op":"optimize","id":"r2","instance":)") +
      instance_json(5, 2) +
      R"(,"optimizer":"annealing:iterations=100","budget":)"
      R"({"deadline_ms":250,"node_limit":1000,"cost_target":1.5},)"
      R"("seed":7,"policy":"overlapped","stream":true,"cache":false,)"
      R"("execute":{"tuples":500,"block_size":16,"workers":2}})";
  const Op op = parse_op(line);
  const auto* optimize = std::get_if<Optimize_op>(&op);
  ASSERT_NE(optimize, nullptr);
  ASSERT_TRUE(optimize->inline_instance.has_value());
  EXPECT_EQ(optimize->inline_instance->instance.size(), 5u);
  EXPECT_EQ(optimize->optimizer, "annealing:iterations=100");
  EXPECT_DOUBLE_EQ(optimize->budget.time_limit_seconds, 0.25);
  EXPECT_EQ(optimize->budget.node_limit, 1000u);
  EXPECT_DOUBLE_EQ(optimize->budget.cost_target, 1.5);
  EXPECT_EQ(optimize->seed, 7u);
  EXPECT_EQ(optimize->model.policy, model::Send_policy::overlapped);
  EXPECT_TRUE(optimize->stream);
  EXPECT_FALSE(optimize->cache);
  ASSERT_TRUE(optimize->execute.has_value());
  EXPECT_EQ(optimize->execute->tuples, 500u);
  EXPECT_EQ(optimize->execute->block_size, 16u);
  EXPECT_EQ(optimize->execute->workers, 2u);
}

TEST(Protocol_test, ParsesCancelStatsShutdown) {
  EXPECT_TRUE(std::holds_alternative<Cancel_op>(
      parse_op(R"({"op":"cancel","id":"r1"})")));
  EXPECT_TRUE(std::holds_alternative<Stats_op>(parse_op(R"({"op":"stats"})")));
  const Op plain = parse_op(R"({"op":"shutdown"})");
  ASSERT_TRUE(std::holds_alternative<Shutdown_op>(plain));
  EXPECT_FALSE(std::get<Shutdown_op>(plain).drain);
  const Op drain = parse_op(R"({"op":"shutdown","drain":true})");
  EXPECT_TRUE(std::get<Shutdown_op>(drain).drain);
}

TEST(Protocol_test, RejectsMalformedOps) {
  EXPECT_THROW(parse_op("not json"), Parse_error);
  EXPECT_THROW(parse_op(R"({"no_op":1})"), Parse_error);
  EXPECT_THROW(parse_op(R"({"op":"frobnicate"})"), Parse_error);
  EXPECT_THROW(parse_op(R"({"op":"register","name":"x"})"), Parse_error);
  EXPECT_THROW(parse_op(R"({"op":"register","name":"","instance":{}})"),
               Parse_error);
  EXPECT_THROW(parse_op(R"({"op":"optimize","instance":"x"})"), Parse_error);
  EXPECT_THROW(parse_op(R"({"op":"optimize","id":"","instance":"x"})"),
               Parse_error);
  EXPECT_THROW(
      parse_op(R"({"op":"optimize","id":"r","instance":"x",)"
               R"("budget":{"deadline_ms":-1}})"),
      Parse_error);
  EXPECT_THROW(parse_op(R"({"op":"optimize","id":"r","instance":"x",)"
                        R"("policy":"sideways"})"),
               Parse_error);
  // Integer fields reject doubles a uint64 cast could not represent —
  // the cast would otherwise be undefined behavior on client input.
  EXPECT_THROW(
      parse_op(R"({"op":"optimize","id":"r","instance":"x",)"
               R"("budget":{"node_limit":1e300}})"),
      Parse_error);
  EXPECT_THROW(parse_op(R"({"op":"optimize","id":"r","instance":"x",)"
                        R"("seed":1e19})"),
               Parse_error);
  EXPECT_THROW(parse_op(R"({"op":"optimize","id":"r","instance":"x",)"
                        R"("execute":{"tuples":1e300}})"),
               Parse_error);
  // Execute-stage resource caps: workers creates OS threads, tuples is
  // uncancellable executor work.
  EXPECT_THROW(parse_op(R"({"op":"optimize","id":"r","instance":"x",)"
                        R"("execute":{"workers":200000}})"),
               Parse_error);
  EXPECT_THROW(parse_op(R"({"op":"optimize","id":"r","instance":"x",)"
                        R"("execute":{"workers":0}})"),
               Parse_error);
  EXPECT_THROW(parse_op(R"({"op":"optimize","id":"r","instance":"x",)"
                        R"("execute":{"tuples":100000000}})"),
               Parse_error);
  EXPECT_THROW(parse_op(R"({"op":"optimize","id":"r","instance":"x",)"
                        R"("execute":{"tuples":10,"block_size":20}})"),
               Parse_error);
}

TEST(Protocol_test, ParsesOptimizeBatch) {
  const Op op = parse_op(
      R"({"op":"optimize_batch","id":"b1","requests":[)"
      R"({"instance":"prod"},)"
      R"({"id":"named","instance":"prod","optimizer":"dp","seed":4},)"
      R"({"instance":"other"}]})");
  const auto* batch = std::get_if<Batch_op>(&op);
  ASSERT_NE(batch, nullptr);
  EXPECT_EQ(batch->id, "b1");
  ASSERT_EQ(batch->requests.size(), 3u);
  // Elements without an id get "<batch>/<index>"; explicit ids win.
  EXPECT_EQ(batch->requests[0].id, "b1/0");
  EXPECT_EQ(batch->requests[1].id, "named");
  EXPECT_EQ(batch->requests[1].optimizer, "dp");
  EXPECT_EQ(batch->requests[1].seed, 4u);
  EXPECT_EQ(batch->requests[2].id, "b1/2");
  EXPECT_EQ(batch->requests[2].instance_name, "other");
}

TEST(Protocol_test, RejectsMalformedBatches) {
  EXPECT_THROW(parse_op(R"({"op":"optimize_batch","requests":[]})"),
               Parse_error);
  EXPECT_THROW(parse_op(R"({"op":"optimize_batch","id":"b","requests":[]})"),
               Parse_error);
  EXPECT_THROW(
      parse_op(R"({"op":"optimize_batch","id":"","requests":[{"instance":"x"}]})"),
      Parse_error);
  // One malformed element poisons the whole batch at parse time.
  EXPECT_THROW(parse_op(R"({"op":"optimize_batch","id":"b","requests":)"
                        R"([{"instance":"x"},{"no_instance":1}]})"),
               Parse_error);
  // The element cap bounds the work a single hostile line can admit.
  std::string oversized = R"({"op":"optimize_batch","id":"b","requests":[)";
  for (std::size_t i = 0; i <= k_max_batch_requests; ++i) {
    if (i != 0) oversized += ",";
    oversized += R"({"instance":"x"})";
  }
  oversized += "]}";
  EXPECT_THROW(parse_op(oversized), Parse_error);
}

TEST(Protocol_test, TruncatedOpsAreParseErrorsNotCrashes) {
  // Every prefix of a valid op line must fail cleanly with Parse_error —
  // the typed "parse" path a session survives — never crash or succeed.
  const std::string line =
      R"({"op":"optimize","id":"r1","instance":"prod","optimizer":"bnb",)"
      R"("budget":{"deadline_ms":250},"seed":7,"stream":true})";
  for (std::size_t cut = 0; cut < line.size(); ++cut) {
    EXPECT_THROW(parse_op(line.substr(0, cut)), Parse_error)
        << "prefix length " << cut;
  }
  EXPECT_TRUE(std::holds_alternative<Optimize_op>(parse_op(line)));
}

TEST(Protocol_test, EventShapes) {
  const io::Json registered = registered_event("prod", 6, 0xabcdefu, true);
  EXPECT_EQ(registered.at("event").as_string(), "registered");
  EXPECT_EQ(registered.at("fingerprint").as_string(), "0000000000abcdef");
  EXPECT_TRUE(registered.at("replaced").as_bool());

  const io::Json admitted = admitted_event("r1", 3);
  EXPECT_EQ(admitted.at("event").as_string(), "admitted");
  EXPECT_EQ(admitted.at("queue_depth").as_number(), 3.0);

  const model::Plan plan(std::vector<model::Service_id>{2, 0, 1});
  const io::Json incumbent = incumbent_event("r1", 1.5, 0.25, plan);
  EXPECT_EQ(incumbent.at("event").as_string(), "incumbent");
  EXPECT_EQ(incumbent.at("plan").as_array().size(), 3u);

  const io::Json cancel = cancel_event("r1", false);
  EXPECT_EQ(cancel.at("event").as_string(), "cancel-requested");
  EXPECT_FALSE(cancel.at("found").as_bool());

  const io::Json error = error_event("boom", "r9");
  EXPECT_EQ(error.at("event").as_string(), "error");
  EXPECT_EQ(error.at("id").as_string(), "r9");
  EXPECT_EQ(error.at("message").as_string(), "boom");
  EXPECT_EQ(error_event("boom").find("id"), nullptr);
  // Untyped errors stay byte-stable: no "code" field unless one is set.
  EXPECT_EQ(error.find("code"), nullptr);
  EXPECT_EQ(error_event("boom", "r9", "parse").at("code").as_string(),
            "parse");

  const io::Json batch = batch_event("b1", 12);
  EXPECT_EQ(batch.at("event").as_string(), "batch-admitted");
  EXPECT_EQ(batch.at("id").as_string(), "b1");
  EXPECT_EQ(batch.at("count").as_number(), 12.0);

  const io::Json overloaded = overloaded_event("r7", 64, 64);
  EXPECT_EQ(overloaded.at("event").as_string(), "error");
  EXPECT_EQ(overloaded.at("code").as_string(), "overloaded");
  EXPECT_EQ(overloaded.at("id").as_string(), "r7");
  EXPECT_EQ(overloaded.at("queue_depth").as_number(), 64.0);
  EXPECT_EQ(overloaded.at("queue_cap").as_number(), 64.0);

  // The typed unknown-instance error: the code is a wire contract — the
  // replicated router branches on it to trigger journal repair, so it
  // must stay byte-stable.
  const io::Json unknown = unknown_instance_event("prod", "r3");
  EXPECT_EQ(unknown.at("event").as_string(), "error");
  EXPECT_EQ(unknown.at("code").as_string(), "unknown-instance");
  EXPECT_EQ(unknown.at("id").as_string(), "r3");
  EXPECT_NE(unknown.at("message").as_string().find("prod"),
            std::string::npos);
  // The id is optional (observe/refit carry none) and omitted, not empty.
  EXPECT_EQ(unknown_instance_event("prod").find("id"), nullptr);
  EXPECT_EQ(unknown_instance_event("prod").at("code").as_string(),
            "unknown-instance");
}

}  // namespace
}  // namespace quest
