// The serving layer end to end, in process: concurrent requests on a
// fixed worker pool produce correct per-request results, mid-flight
// cancellation releases the worker within the anytime latency bound,
// repeated identical requests hit the plan cache, budgets are honored
// per request, and shutdown (cancelling or draining) never leaks a
// worker — the destructor joining is part of every test.

#include "quest/serve/server.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <condition_variable>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "quest/common/timer.hpp"
#include "quest/core/engines.hpp"
#include "quest/io/instance_io.hpp"
#include "quest/serve/protocol.hpp"
#include "support/helpers.hpp"

namespace quest {
namespace {

using namespace quest::serve;

/// Thread-safe event capture with predicate waits.
class Event_log {
 public:
  void operator()(const io::Json& event) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      events_.push_back(event);
    }
    changed_.notify_all();
  }

  /// Blocks until an event matches; returns it. Fails the test (and
  /// returns null) after `timeout_seconds`.
  io::Json wait_for(const std::function<bool(const io::Json&)>& predicate,
                    double timeout_seconds = 20.0) {
    std::unique_lock<std::mutex> lock(mutex_);
    std::size_t scanned = 0;
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::duration<double>(timeout_seconds);
    for (;;) {
      for (; scanned < events_.size(); ++scanned) {
        if (predicate(events_[scanned])) return events_[scanned];
      }
      if (changed_.wait_until(lock, deadline) ==
          std::cv_status::timeout) {
        ADD_FAILURE() << "timed out waiting for an event";
        return io::Json();
      }
    }
  }

  io::Json wait_result(const std::string& id, double timeout_seconds = 20.0) {
    return wait_for(
        [&](const io::Json& event) {
          const io::Json* kind = event.find("event");
          const io::Json* event_id = event.find("id");
          return kind != nullptr && kind->as_string() == "result" &&
                 event_id != nullptr && event_id->as_string() == id;
        },
        timeout_seconds);
  }

  std::vector<io::Json> snapshot() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return events_;
  }

 private:
  mutable std::mutex mutex_;
  std::condition_variable changed_;
  std::vector<io::Json> events_;
};

Optimize_op optimize_op(std::string id, std::string instance,
                        std::string spec) {
  Optimize_op op;
  op.id = std::move(id);
  op.instance_name = std::move(instance);
  op.optimizer = std::move(spec);
  return op;
}

Register_op register_op(std::string name, const model::Instance& instance) {
  return Register_op{std::move(name),
                     io::Instance_document{instance, std::nullopt}};
}

/// A job that runs until cancelled (with a far-away safety net so a
/// broken cancellation path cannot hang the suite).
Optimize_op long_running_op(std::string id, std::string instance) {
  Optimize_op op = optimize_op(std::move(id), std::move(instance),
                               "annealing:iterations=2000000000");
  op.budget.time_limit_seconds = 60.0;  // safety net only
  op.cache = false;  // keep these runs out of the cache tiers
  return op;
}

TEST(Server_test, RegisterOptimizeResultLifecycle) {
  Event_log log;
  Server_options options;
  options.workers = 2;
  Server server(options, std::ref(log));

  const auto instance = test::selective_instance(10, 3);
  server.handle(register_op("prod", instance));
  const io::Json registered = log.wait_for([](const io::Json& event) {
    return event.at("event").as_string() == "registered";
  });
  EXPECT_EQ(registered.at("services").as_number(), 10.0);

  server.handle(optimize_op("r1", "prod", "bnb"));
  const io::Json result = log.wait_result("r1");
  ASSERT_TRUE(result.is_object());
  EXPECT_EQ(result.at("termination").as_string(), "optimal");
  EXPECT_TRUE(result.at("proven_optimal").as_bool());
  EXPECT_FALSE(result.at("cached").as_bool());

  // The admitted ack must precede the result in the event stream.
  const auto events = log.snapshot();
  std::size_t admitted_at = events.size(), result_at = events.size();
  for (std::size_t i = 0; i < events.size(); ++i) {
    const std::string kind = events[i].at("event").as_string();
    if (kind == "admitted") admitted_at = std::min(admitted_at, i);
    if (kind == "result") result_at = std::min(result_at, i);
  }
  EXPECT_LT(admitted_at, result_at);

  // Reference: the same engine run directly.
  opt::Request request;
  request.instance = &instance;
  const auto reference = core::make_optimizer("bnb")->optimize(request);
  EXPECT_TRUE(
      test::costs_equal(result.at("cost").as_number(), reference.cost));
}

TEST(Server_test, ConcurrentRequestsGetCorrectPerRequestResults) {
  Event_log log;
  Server_options options;
  options.workers = 4;
  options.enable_cache = false;  // force every request through an engine
  Server server(options, std::ref(log));

  // Eight requests over four distinct instances and two exact engines;
  // every result must match its own problem's optimum.
  std::vector<model::Instance> instances;
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    instances.push_back(test::selective_instance(9, seed * 17));
    server.handle(register_op("i" + std::to_string(seed), instances.back()));
  }
  std::vector<std::string> ids;
  for (int request_index = 0; request_index < 8; ++request_index) {
    const std::string id = "r" + std::to_string(request_index);
    ids.push_back(id);
    server.handle(optimize_op(
        id, "i" + std::to_string(1 + request_index % 4),
        request_index % 2 == 0 ? "bnb" : "dp"));
  }
  for (int request_index = 0; request_index < 8; ++request_index) {
    const io::Json result = log.wait_result(ids[request_index]);
    ASSERT_TRUE(result.is_object()) << ids[request_index];
    EXPECT_EQ(result.at("termination").as_string(), "optimal");
    opt::Request request;
    request.instance = &instances[request_index % 4];
    const auto reference = core::make_optimizer("bnb")->optimize(request);
    EXPECT_TRUE(test::costs_equal(result.at("cost").as_number(),
                                  reference.cost))
        << ids[request_index];
  }
}

TEST(Server_test, SustainsEightConcurrentRequestsOnThePool) {
  Event_log log;
  Server_options options;
  options.workers = 8;
  Server server(options, std::ref(log));
  server.handle(register_op("prod", test::selective_instance(12, 5)));

  for (int request_index = 0; request_index < 8; ++request_index) {
    server.handle(
        long_running_op("c" + std::to_string(request_index), "prod"));
  }
  // All eight must be running at once — the high-water mark proves the
  // pool sustained them concurrently (scheduling, not wall-clock
  // parallelism, so this holds on any core count).
  Timer timer;
  while (server.stats().max_concurrent < 8 && timer.seconds() < 15.0) {
    std::this_thread::yield();
  }
  EXPECT_EQ(server.stats().max_concurrent, 8u);

  for (int request_index = 0; request_index < 8; ++request_index) {
    server.handle(Cancel_op{"c" + std::to_string(request_index)});
  }
  for (int request_index = 0; request_index < 8; ++request_index) {
    const io::Json result =
        log.wait_result("c" + std::to_string(request_index));
    ASSERT_TRUE(result.is_object());
    EXPECT_EQ(result.at("termination").as_string(), "cancelled");
    EXPECT_TRUE(result.at("complete").as_bool());  // best incumbent
  }
  const Server_stats stats = server.stats();
  EXPECT_EQ(stats.completed, 8u);
  EXPECT_EQ(stats.cancelled, 8u);
  // The running gauge settles asynchronously (workers decrement after
  // their result is out); give it a beat.
  Timer settle;
  while (server.stats().running != 0 && settle.seconds() < 10.0) {
    std::this_thread::yield();
  }
  EXPECT_EQ(server.stats().running, 0u);
}

TEST(Server_test, CancelReleasesTheWorkerWithinTheLatencyBound) {
  // The PR 3 anytime contract, measured through the serving layer: once
  // cancel is requested, the engine polls its token within one work unit
  // and the worker emits the result promptly.
  constexpr double cancel_latency_budget_seconds = 0.05;

  Event_log log;
  Server_options options;
  options.workers = 2;
  Server server(options, std::ref(log));
  server.handle(register_op("prod", test::selective_instance(12, 7)));

  Optimize_op op = long_running_op("slow", "prod");
  op.stream = true;
  server.handle(std::move(op));

  // Wait for the first incumbent so the job is provably mid-flight.
  log.wait_for([](const io::Json& event) {
    return event.at("event").as_string() == "incumbent";
  });

  Timer timer;
  server.handle(Cancel_op{"slow"});
  const io::Json result = log.wait_result("slow");
  const double latency = timer.seconds();
  ASSERT_TRUE(result.is_object());
  EXPECT_EQ(result.at("termination").as_string(), "cancelled");
  EXPECT_TRUE(result.at("complete").as_bool());
  EXPECT_LE(latency, cancel_latency_budget_seconds);

  const io::Json ack = log.wait_for([](const io::Json& event) {
    return event.at("event").as_string() == "cancel-requested";
  });
  EXPECT_TRUE(ack.at("found").as_bool());
}

TEST(Server_test, RepeatedIdenticalRequestIsServedFromTheCache) {
  Event_log log;
  Server_options options;
  options.workers = 1;
  Server server(options, std::ref(log));
  server.handle(register_op("prod", test::selective_instance(10, 11)));

  server.handle(optimize_op("first", "prod", "bnb"));
  const io::Json first = log.wait_result("first");
  ASSERT_TRUE(first.is_object());
  EXPECT_FALSE(first.at("cached").as_bool());

  // The repeat also asks for execution: only the optimization is
  // cached — the execute stage still runs, on the cached plan.
  Optimize_op second_op = optimize_op("second", "prod", "bnb");
  second_op.execute = Execute_spec{200, 16, 2};
  server.handle(std::move(second_op));
  const io::Json second = log.wait_result("second");
  ASSERT_TRUE(second.is_object());
  EXPECT_TRUE(second.at("cached").as_bool());
  EXPECT_TRUE(test::costs_equal(second.at("cost").as_number(),
                                first.at("cost").as_number()));
  ASSERT_NE(second.find("execution"), nullptr);
  // (Ten selective services can filter 200 tuples down to zero, so
  // assert on the cost model, not on delivery.)
  EXPECT_GT(second.at("execution").at("predicted_cost").as_number(), 0.0);

  const Server_stats stats = server.stats();
  EXPECT_EQ(stats.cache_hits, 1u);
  EXPECT_EQ(stats.cache_lookups, 2u);
  EXPECT_EQ(stats.cache_entries, 1u);

  // Opting a request out of the cache forces a fresh (warm-started) run.
  Optimize_op uncached = optimize_op("third", "prod", "bnb");
  uncached.cache = false;
  server.handle(std::move(uncached));
  const io::Json third = log.wait_result("third");
  EXPECT_FALSE(third.at("cached").as_bool());
  EXPECT_EQ(server.stats().cache_hits, 1u);
}

TEST(Server_test, CachedAnswersBypassASaturatedPool) {
  // The cache is consulted at admission, on the transport thread: a
  // repeat request is answered instantly even when every worker is
  // pinned by long-running jobs.
  Event_log log;
  Server_options options;
  options.workers = 1;
  Server server(options, std::ref(log));
  server.handle(register_op("prod", test::selective_instance(10, 43)));

  server.handle(optimize_op("seed-cache", "prod", "bnb"));
  const io::Json first = log.wait_result("seed-cache");
  ASSERT_TRUE(first.is_object());

  // Pin the only worker; its first streamed incumbent proves the job is
  // mid-flight (and therefore out of the queue).
  Optimize_op hog = long_running_op("hog", "prod");
  hog.stream = true;
  server.handle(std::move(hog));
  log.wait_for([](const io::Json& event) {
    const io::Json* id = event.find("id");
    return event.at("event").as_string() == "incumbent" && id != nullptr &&
           id->as_string() == "hog";
  });
  ASSERT_EQ(server.stats().running, 1u);

  server.handle(optimize_op("repeat", "prod", "bnb"));
  const io::Json repeat = log.wait_result("repeat", /*timeout=*/5.0);
  ASSERT_TRUE(repeat.is_object());
  EXPECT_TRUE(repeat.at("cached").as_bool());
  // The hog is still running: the cached answer never touched a worker.
  EXPECT_EQ(server.stats().running, 1u);
  EXPECT_EQ(server.stats().queue_depth, 0u);

  server.handle(Cancel_op{"hog"});
  log.wait_result("hog");
}

TEST(Server_test, CancelledResultsAreNotReplayedFromTheCache) {
  // A client's cancel must not poison later identical requests: the
  // cancelled incumbent may serve as a warm start, but the repeat
  // request gets its own full run.
  Event_log log;
  Server_options options;
  options.workers = 1;
  Server server(options, std::ref(log));
  server.handle(register_op("prod", test::selective_instance(12, 37)));

  Optimize_op first = optimize_op("first", "prod",
                                  "annealing:iterations=2000000000");
  first.budget.time_limit_seconds = 60.0;  // safety net only
  first.stream = true;                     // cache stays ON here
  server.handle(std::move(first));
  log.wait_for([](const io::Json& event) {
    return event.at("event").as_string() == "incumbent";
  });
  server.handle(Cancel_op{"first"});
  const io::Json cancelled = log.wait_result("first");
  ASSERT_TRUE(cancelled.is_object());
  ASSERT_EQ(cancelled.at("termination").as_string(), "cancelled");

  // Identical repeat, with a budget it can actually finish under.
  Optimize_op repeat = optimize_op("repeat", "prod",
                                   "annealing:iterations=2000000000");
  repeat.budget.time_limit_seconds = 60.0;
  repeat.budget.node_limit = 2000;
  server.handle(std::move(repeat));
  const io::Json rerun = log.wait_result("repeat");
  ASSERT_TRUE(rerun.is_object());
  EXPECT_FALSE(rerun.at("cached").as_bool());
  EXPECT_TRUE(rerun.at("warm_started").as_bool());
  EXPECT_NE(rerun.at("termination").as_string(), "cancelled");
}

TEST(Server_test, RequestIdIsReusableTheMomentItsResultArrives) {
  // The result event is the retirement edge: jobs leave the active set
  // before their result is emitted, so a pipelined client may recycle
  // ids without racing into "already in flight".
  Event_log log;
  Server_options options;
  options.workers = 2;
  Server server(options, std::ref(log));
  server.handle(register_op("prod", test::selective_instance(8, 41)));

  for (int round = 0; round < 20; ++round) {
    Optimize_op op = optimize_op("same-id", "prod", "greedy");
    op.cache = false;
    server.handle(std::move(op));
    const io::Json result = log.wait_for(
        [&, seen = round](const io::Json& event) mutable {
          const io::Json* kind = event.find("event");
          if (kind == nullptr || kind->as_string() != "result") return false;
          return seen-- == 0;  // the round-th result event
        },
        20.0);
    ASSERT_TRUE(result.is_object()) << "round " << round;
  }
  for (const auto& event : log.snapshot()) {
    EXPECT_NE(event.at("event").as_string(), "error");
  }
  EXPECT_EQ(server.stats().completed, 20u);
}

TEST(Server_test, WarmStartFlowsAcrossEngines) {
  Event_log log;
  Server_options options;
  options.workers = 1;
  Server server(options, std::ref(log));
  server.handle(register_op("prod", test::selective_instance(11, 13)));

  server.handle(optimize_op("exact", "prod", "bnb"));
  const io::Json exact = log.wait_result("exact");
  ASSERT_TRUE(exact.is_object());
  EXPECT_FALSE(exact.at("warm_started").as_bool());

  // A different engine on the same problem misses the exact tier but
  // warm-starts from the optimal plan — so it can't do worse.
  server.handle(optimize_op("heuristic", "prod", "local-search"));
  const io::Json warmed = log.wait_result("heuristic");
  ASSERT_TRUE(warmed.is_object());
  EXPECT_FALSE(warmed.at("cached").as_bool());
  EXPECT_TRUE(warmed.at("warm_started").as_bool());
  EXPECT_TRUE(test::costs_equal(warmed.at("cost").as_number(),
                                exact.at("cost").as_number()));
}

TEST(Server_test, ResultsAreFlooredAtTheBestKnownPlan) {
  // Engines with no incumbent to seed (greedy, random, dp) ignore
  // Request::warm_start — the server still guarantees a warm-started
  // result is never costlier than the best plan the cache held.
  Event_log log;
  Server_options options;
  options.workers = 1;
  Server server(options, std::ref(log));
  server.handle(register_op("prod", test::selective_instance(11, 47)));

  server.handle(optimize_op("exact", "prod", "bnb"));
  const io::Json exact = log.wait_result("exact");
  ASSERT_TRUE(exact.is_object());
  ASSERT_TRUE(exact.at("proven_optimal").as_bool());

  Optimize_op weak = optimize_op("weak", "prod", "random:samples=1");
  weak.seed = 3;
  server.handle(std::move(weak));
  const io::Json floored = log.wait_result("weak");
  ASSERT_TRUE(floored.is_object());
  EXPECT_TRUE(floored.at("warm_started").as_bool());
  EXPECT_TRUE(test::costs_equal(floored.at("cost").as_number(),
                                exact.at("cost").as_number()));
}

TEST(Server_test, PerRequestBudgetsAreHonored) {
  Event_log log;
  Server_options options;
  options.workers = 2;
  Server server(options, std::ref(log));
  server.handle(register_op("prod", test::selective_instance(12, 19)));

  Optimize_op limited = optimize_op("limited", "prod",
                                    "annealing:iterations=2000000000");
  limited.budget.node_limit = 500;
  limited.cache = false;
  server.handle(std::move(limited));
  const io::Json by_work = log.wait_result("limited");
  ASSERT_TRUE(by_work.is_object());
  EXPECT_EQ(by_work.at("termination").as_string(), "budget-exhausted");

  Optimize_op deadlined = optimize_op("deadlined", "prod",
                                      "annealing:iterations=2000000000");
  deadlined.budget.time_limit_seconds = 0.05;
  deadlined.cache = false;
  server.handle(std::move(deadlined));
  const io::Json by_time = log.wait_result("deadlined");
  ASSERT_TRUE(by_time.is_object());
  EXPECT_EQ(by_time.at("termination").as_string(), "budget-exhausted");
}

TEST(Server_test, ErrorsBecomeEventsAndTheServerSurvives) {
  Event_log log;
  Server_options options;
  options.workers = 1;
  Server server(options, std::ref(log));

  // Unknown instance.
  server.handle(optimize_op("bad1", "nope", "bnb"));
  const io::Json unknown = log.wait_for([](const io::Json& event) {
    const io::Json* id = event.find("id");
    return event.at("event").as_string() == "error" && id != nullptr &&
           id->as_string() == "bad1";
  });
  EXPECT_NE(unknown.at("message").as_string().find("unknown instance"),
            std::string::npos);
  // Typed: the replicated router keys journal repair off this code.
  EXPECT_EQ(unknown.at("code").as_string(), "unknown-instance");

  // Unknown engine spec fails at admission.
  server.handle(register_op("prod", test::selective_instance(8, 23)));
  server.handle(optimize_op("bad2", "prod", "frobnicator"));
  log.wait_for([](const io::Json& event) {
    const io::Json* id = event.find("id");
    return event.at("event").as_string() == "error" && id != nullptr &&
           id->as_string() == "bad2";
  });

  // Malformed line through the transport path.
  EXPECT_TRUE(server.handle_line("this is not json"));
  log.wait_for([](const io::Json& event) {
    return event.at("event").as_string() == "error" &&
           event.find("id") == nullptr;
  });

  // Duplicate in-flight id.
  server.handle(long_running_op("dup", "prod"));
  server.handle(long_running_op("dup", "prod"));
  log.wait_for([](const io::Json& event) {
    const io::Json* message = event.find("message");
    return event.at("event").as_string() == "error" && message != nullptr &&
           message->as_string().find("already in flight") !=
               std::string::npos;
  });
  server.handle(Cancel_op{"dup"});
  log.wait_result("dup");

  // And the server still works.
  server.handle(optimize_op("good", "prod", "greedy"));
  const io::Json result = log.wait_result("good");
  ASSERT_TRUE(result.is_object());
  EXPECT_EQ(server.stats().failed, 0u);  // admission errors, not failures
}

TEST(Server_test, ShutdownCancelsInFlightWorkAndJoins) {
  Event_log log;
  Server_options options;
  options.workers = 1;
  Server server(options, std::ref(log));
  server.handle(register_op("prod", test::selective_instance(12, 29)));

  // One running, one queued behind it.
  server.handle(long_running_op("running", "prod"));
  server.handle(long_running_op("queued", "prod"));
  EXPECT_FALSE(server.handle(Shutdown_op{}));

  // Every admitted request still got a result, and the workers are
  // joined by the time handle() returned.
  const auto events = log.snapshot();
  int results = 0;
  bool complete_seen = false;
  for (const auto& event : events) {
    if (event.at("event").as_string() == "result") {
      ++results;
      EXPECT_EQ(event.at("termination").as_string(), "cancelled");
    }
    if (event.at("event").as_string() == "shutdown-complete") {
      complete_seen = true;
      EXPECT_EQ(event.at("completed").as_number(), 2.0);
    }
  }
  EXPECT_EQ(results, 2);
  EXPECT_TRUE(complete_seen);

  // Post-shutdown submissions are refused politely.
  server.handle(optimize_op("late", "prod", "greedy"));
  log.wait_for([](const io::Json& event) {
    const io::Json* message = event.find("message");
    return event.at("event").as_string() == "error" && message != nullptr &&
           message->as_string().find("shutting down") != std::string::npos;
  });
}

TEST(Server_test, DrainShutdownFinishesAdmittedWork) {
  Event_log log;
  Server_options options;
  options.workers = 1;
  Server server(options, std::ref(log));
  server.handle(register_op("prod", test::selective_instance(9, 31)));

  for (int request_index = 0; request_index < 3; ++request_index) {
    Optimize_op op =
        optimize_op("d" + std::to_string(request_index), "prod", "greedy");
    op.cache = false;
    server.handle(std::move(op));
  }
  EXPECT_FALSE(server.handle(Shutdown_op{/*drain=*/true}));

  int results = 0;
  for (const auto& event : log.snapshot()) {
    if (event.at("event").as_string() == "result") {
      ++results;
      EXPECT_EQ(event.at("termination").as_string(), "completed");
    }
  }
  EXPECT_EQ(results, 3);
}

// Acceptance round trip of the Cost_model redesign at the serving layer:
// a correlated instance travels register -> optimize -> cache-hit intact,
// the result names the model it was computed under, and neither cache
// tier ever crosses models — an identical request under the independent
// model (or a different correlation seed) misses and re-optimizes.
TEST(Server_test, CorrelatedModelRoundTripsWithoutCrossModelCacheHits) {
  Event_log log;
  Server_options options;
  options.workers = 2;
  Server server(options, std::ref(log));

  const std::size_t n = 8;
  const auto instance = test::selective_instance(n, 77);
  server.handle(register_op("prod", instance));

  const auto correlated_spec =
      model::parse_cost_model_spec("correlated:strength=0.8,seed=5");
  Optimize_op correlated = optimize_op("c1", "prod", "bnb");
  correlated.model = correlated_spec;
  server.handle(std::move(correlated));
  const io::Json first = log.wait_result("c1");
  ASSERT_TRUE(first.is_object());
  EXPECT_EQ(first.at("termination").as_string(), "optimal");
  EXPECT_FALSE(first.at("cached").as_bool());
  const std::string model_key = first.at("model").as_string();
  EXPECT_EQ(model_key, correlated_spec.bind(n).key());

  // The reported cost matches a direct correlated run, not the
  // independent one.
  opt::Request request;
  request.instance = &instance;
  request.model = correlated_spec.bind(n);
  const auto reference = core::make_optimizer("bnb")->optimize(request);
  EXPECT_TRUE(
      test::costs_equal(first.at("cost").as_number(), reference.cost));

  // Identical repeat: served from the exact tier, same model key.
  Optimize_op repeat = optimize_op("c2", "prod", "bnb");
  repeat.model = correlated_spec;
  server.handle(std::move(repeat));
  const io::Json second = log.wait_result("c2");
  EXPECT_TRUE(second.at("cached").as_bool());
  EXPECT_EQ(second.at("model").as_string(), model_key);
  EXPECT_TRUE(test::costs_equal(second.at("cost").as_number(),
                                first.at("cost").as_number()));

  // Same instance/engine under the independent model: a miss (fresh,
  // uncached run) with its own model key.
  server.handle(optimize_op("i1", "prod", "bnb"));
  const io::Json independent = log.wait_result("i1");
  EXPECT_FALSE(independent.at("cached").as_bool());
  EXPECT_EQ(independent.at("model").as_string(),
            model::Cost_model().key());

  // A different correlation seed is a different model: also a miss.
  Optimize_op other = optimize_op("c3", "prod", "bnb");
  other.model = model::parse_cost_model_spec("correlated:strength=0.8,seed=6");
  server.handle(std::move(other));
  const io::Json third = log.wait_result("c3");
  EXPECT_FALSE(third.at("cached").as_bool());
  EXPECT_NE(third.at("model").as_string(), model_key);
}

// The nested-parallelism cap applies to portfolio specs too: a
// requested thread count above Server_options::engine_threads is
// rewritten down at admission, before the cache key — so two requests
// whose effective configurations coincide share one cache entry.
TEST(Server_test, PortfolioThreadRequestsAreCappedAtAdmission) {
  Event_log log;
  Server_options options;
  options.workers = 1;
  options.engine_threads = 1;  // cap every engine to one thread
  Server server(options, std::ref(log));
  server.handle(register_op("prod", test::selective_instance(9, 53)));

  server.handle(optimize_op("wide", "prod", "portfolio:threads=8"));
  const io::Json wide = log.wait_result("wide");
  ASSERT_TRUE(wide.is_object());
  EXPECT_EQ(wide.at("termination").as_string(), "optimal");
  // The capped run is sequential: bnb-par never spun up 8 workers.
  EXPECT_NE(wide.at("stats").at("engine_threads").as_number(), 8.0);

  // "portfolio:threads=1" is the same effective spec — a cache hit
  // proves the rewrite happened before the key was computed.
  server.handle(optimize_op("narrow", "prod", "portfolio:threads=1"));
  const io::Json narrow = log.wait_result("narrow");
  ASSERT_TRUE(narrow.is_object());
  EXPECT_TRUE(narrow.at("cached").as_bool());
}

// The bounded admission queue sheds with a typed "overloaded" error and
// counts the refusal; unbounded (queue_cap = 0) keeps legacy behavior.
TEST(Server_test, BoundedQueueShedsOverloadWithATypedError) {
  Event_log log;
  Server_options options;
  options.workers = 1;
  options.queue_cap = 1;
  Server server(options, std::ref(log));
  server.handle(register_op("prod", test::selective_instance(12, 59)));

  // Occupy the worker (incumbent proves it left the queue), fill the
  // one queue slot, then overload.
  Optimize_op hog = long_running_op("hog", "prod");
  hog.stream = true;
  server.handle(std::move(hog));
  log.wait_for([](const io::Json& event) {
    return event.at("event").as_string() == "incumbent";
  });
  server.handle(long_running_op("queued", "prod"));
  log.wait_for([](const io::Json& event) {
    const io::Json* id = event.find("id");
    return event.at("event").as_string() == "admitted" && id != nullptr &&
           id->as_string() == "queued";
  });

  server.handle(long_running_op("extra", "prod"));
  const io::Json shed = log.wait_for([](const io::Json& event) {
    const io::Json* id = event.find("id");
    return event.at("event").as_string() == "error" && id != nullptr &&
           id->as_string() == "extra";
  });
  EXPECT_EQ(shed.at("code").as_string(), "overloaded");
  EXPECT_EQ(shed.at("queue_depth").as_number(), 1.0);
  EXPECT_EQ(shed.at("queue_cap").as_number(), 1.0);
  EXPECT_EQ(server.stats().shed, 1u);
  EXPECT_EQ(server.stats().admitted, 2u);  // the shed op never admitted

  for (const char* id : {"hog", "queued"}) {
    server.handle(Cancel_op{id});
    log.wait_result(id);
  }
}

// A spec-level override (shared model= keys in the optimizer spec) must
// reach both the engine and the cache key — the admission path folds it
// into the job's model so a cached plan can never cross models.
TEST(Server_test, SpecLevelModelOverrideReachesTheCacheKey) {
  Event_log log;
  Server server(Server_options{}, std::ref(log));
  const std::size_t n = 7;
  const auto instance = test::selective_instance(n, 13);
  server.handle(register_op("prod", instance));

  server.handle(optimize_op(
      "s1", "prod", "bnb:model=correlated,model-strength=0.7,model-seed=9"));
  const io::Json result = log.wait_result("s1");
  ASSERT_TRUE(result.is_object());
  const auto expected = model::Cost_model::correlated_seeded(n, 0.7, 9);
  EXPECT_EQ(result.at("model").as_string(), expected.key());

  // The plain-spec request with an op-level correlated model of the same
  // parameters hits the entry only when the *effective* models agree...
  Optimize_op same_model = optimize_op(
      "s2", "prod", "bnb:model=correlated,model-strength=0.7,model-seed=9");
  server.handle(std::move(same_model));
  EXPECT_TRUE(log.wait_result("s2").at("cached").as_bool());

  // ...and the bare "bnb" spec (independent model) never does.
  server.handle(optimize_op("s3", "prod", "bnb"));
  EXPECT_FALSE(log.wait_result("s3").at("cached").as_bool());
}

}  // namespace
}  // namespace quest
