// The session layer in isolation, over a scripted in-memory transport:
// line reassembly across arbitrary chunk boundaries, the per-line size
// cap (typed "line-overflow" error, discard-until-newline recovery,
// session survives), per-connection request-id scoping, disconnect
// cancelling a client's in-flight work, and a shutdown op ending the
// serve loop.

#include "quest/serve/session.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "quest/common/timer.hpp"
#include "quest/io/instance_io.hpp"
#include "quest/serve/protocol.hpp"
#include "quest/serve/server.hpp"
#include "support/helpers.hpp"

namespace quest {
namespace {

using namespace quest::serve;

/// A transport whose run() plays a pre-recorded script of connection
/// events and whose outbound lines are captured per connection. send()
/// stays thread-safe: Server workers deliver results asynchronously,
/// possibly after run() returned.
class Fake_transport final : public Transport {
 public:
  void script_open(Connection_id id) { script_.push_back({Kind::open, id, {}}); }
  void script_data(Connection_id id, std::string bytes) {
    script_.push_back({Kind::data, id, std::move(bytes)});
  }
  void script_close(Connection_id id) {
    script_.push_back({Kind::close, id, {}});
  }

  void run(const Handlers& handlers) override {
    for (const Step& step : script_) {
      if (stopped_.load()) break;
      switch (step.kind) {
        case Kind::open:
          if (handlers.on_open) handlers.on_open(step.id);
          break;
        case Kind::data:
          if (handlers.on_data) handlers.on_data(step.id, step.bytes);
          break;
        case Kind::close:
          if (handlers.on_close) handlers.on_close(step.id);
          break;
      }
    }
  }

  void stop() override { stopped_.store(true); }

  bool send(Connection_id connection, std::string_view line) override {
    std::lock_guard<std::mutex> lock(mutex_);
    sent_[connection].emplace_back(line);
    return true;
  }

  void close(Connection_id) override {}

  bool stopped() const { return stopped_.load(); }

  std::vector<std::string> sent(Connection_id connection) const {
    std::lock_guard<std::mutex> lock(mutex_);
    const auto found = sent_.find(connection);
    return found == sent_.end() ? std::vector<std::string>{} : found->second;
  }

  /// Polls until connection `connection` has at least `count` outbound
  /// lines (workers deliver asynchronously).
  bool wait_for_lines(Connection_id connection, std::size_t count,
                      double timeout_seconds = 20.0) const {
    Timer timer;
    while (timer.seconds() < timeout_seconds) {
      if (sent(connection).size() >= count) return true;
      std::this_thread::yield();
    }
    return false;
  }

 private:
  enum class Kind { open, data, close };
  struct Step {
    Kind kind;
    Connection_id id;
    std::string bytes;
  };

  std::vector<Step> script_;
  std::atomic<bool> stopped_{false};
  mutable std::mutex mutex_;
  std::map<Connection_id, std::vector<std::string>> sent_;
};

std::string event_kind(const std::string& line) {
  return io::Json::parse(line).at("event").as_string();
}

std::string error_code(const std::string& line) {
  const io::Json event = io::Json::parse(line);
  const io::Json* code = event.find("code");
  return code == nullptr ? std::string() : code->as_string();
}

std::string register_line(const std::string& name, std::size_t n,
                          std::uint64_t seed) {
  return std::string(R"({"op":"register","name":")") + name +
         R"(","instance":)" +
         io::to_json(test::selective_instance(n, seed)).dump() + "}\n";
}

TEST(Session_test, ReassemblesLinesAcrossArbitraryChunkBoundaries) {
  Fake_transport transport;
  transport.script_open(1);
  // One stats op split byte-by-byte, then two ops arriving in a single
  // chunk — framing must be independent of chunking.
  const std::string stats = "{\"op\":\"stats\"}\n";
  for (const char byte : stats) {
    transport.script_data(1, std::string(1, byte));
  }
  transport.script_data(1, stats + stats);
  transport.script_close(1);

  Server server(Server_options{});
  Session_manager sessions(server, transport, Session_options{});
  EXPECT_FALSE(sessions.serve());  // transport ran out; no shutdown op

  const auto lines = transport.sent(1);
  ASSERT_EQ(lines.size(), 3u);
  for (const std::string& line : lines) {
    EXPECT_EQ(event_kind(line), "stats");
  }
}

TEST(Session_test, OversizedLineIsShedTypedAndTheSessionSurvives) {
  Fake_transport transport;
  transport.script_open(1);
  // The oversized line arrives in two chunks: the first alone already
  // exceeds the cap (discard mode engages before the newline is seen),
  // the second carries the tail plus a valid op that must still work.
  Session_options options;
  options.max_line_bytes = 64;
  transport.script_data(1, std::string(100, 'x'));
  transport.script_data(1, std::string(50, 'x') + "\n{\"op\":\"stats\"}\n");
  // A complete-but-oversized line in one chunk takes the other path.
  transport.script_data(1, std::string(200, 'y') + "\n");
  transport.script_data(1, "{\"op\":\"stats\"}\n");
  transport.script_close(1);

  Server server(Server_options{});
  Session_manager sessions(server, transport, options);
  sessions.serve();

  const auto lines = transport.sent(1);
  ASSERT_EQ(lines.size(), 4u);
  EXPECT_EQ(event_kind(lines[0]), "error");
  EXPECT_EQ(error_code(lines[0]), "line-overflow");
  EXPECT_EQ(event_kind(lines[1]), "stats");
  EXPECT_EQ(event_kind(lines[2]), "error");
  EXPECT_EQ(error_code(lines[2]), "line-overflow");
  EXPECT_EQ(event_kind(lines[3]), "stats");
}

TEST(Session_test, RequestIdsAreScopedPerConnection) {
  Fake_transport transport;
  // Both connections register their own instance and run request "r1" —
  // with per-session id scoping neither sees "already in flight", and
  // each result reports its own connection's problem size.
  transport.script_open(1);
  transport.script_open(2);
  transport.script_data(1, register_line("a", 6, 3));
  transport.script_data(2, register_line("b", 8, 4));
  transport.script_data(
      1, R"({"op":"optimize","id":"r1","instance":"a","optimizer":"bnb"})"
         "\n");
  transport.script_data(
      2, R"({"op":"optimize","id":"r1","instance":"b","optimizer":"bnb"})"
         "\n");

  Server server(Server_options{});
  Session_manager sessions(server, transport, Session_options{});
  sessions.serve();

  // registered + admitted + result per connection.
  ASSERT_TRUE(transport.wait_for_lines(1, 3));
  ASSERT_TRUE(transport.wait_for_lines(2, 3));
  for (const Connection_id connection : {Connection_id{1}, Connection_id{2}}) {
    bool saw_result = false;
    for (const std::string& line : transport.sent(connection)) {
      const io::Json event = io::Json::parse(line);
      EXPECT_NE(event.at("event").as_string(), "error") << line;
      if (event.at("event").as_string() == "result") {
        saw_result = true;
        EXPECT_EQ(event.at("id").as_string(), "r1");
        EXPECT_EQ(event.at("plan").as_array().size(),
                  connection == 1 ? 6u : 8u);
      }
    }
    EXPECT_TRUE(saw_result) << "connection " << connection;
  }
  server.shutdown();
}

TEST(Session_test, DisconnectCancelsTheClientsInFlightWork) {
  Fake_transport transport;
  transport.script_open(1);
  transport.script_data(1, register_line("prod", 12, 5));
  transport.script_data(
      1, R"({"op":"optimize","id":"gone","instance":"prod",)"
         R"("optimizer":"annealing:iterations=2000000000",)"
         R"("budget":{"deadline_ms":60000},"cache":false})"
         "\n");
  transport.script_close(1);

  Server server(Server_options{});
  Session_manager sessions(server, transport, Session_options{});
  sessions.serve();

  // The close cancelled the job: the worker frees up without any client
  // reading the result (the event is suppressed, not wedged).
  Timer timer;
  while (server.stats().completed < 1 && timer.seconds() < 20.0) {
    std::this_thread::yield();
  }
  const Server_stats stats = server.stats();
  EXPECT_EQ(stats.completed, 1u);
  EXPECT_EQ(stats.cancelled, 1u);
  EXPECT_EQ(stats.sessions, 0u);
  server.shutdown();
}

TEST(Session_test, ShutdownOpStopsTheTransportAndEndsServe) {
  Fake_transport transport;
  transport.script_open(1);
  transport.script_data(1, "{\"op\":\"shutdown\"}\n");
  // Anything scripted after the shutdown must never be processed.
  transport.script_data(1, "{\"op\":\"stats\"}\n");

  Server server(Server_options{});
  Session_manager sessions(server, transport, Session_options{});
  EXPECT_TRUE(sessions.serve());
  EXPECT_TRUE(transport.stopped());

  const auto lines = transport.sent(1);
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_EQ(event_kind(lines[0]), "shutting-down");
  EXPECT_EQ(event_kind(lines[1]), "shutdown-complete");
}

}  // namespace
}  // namespace quest
