// The TCP transport end to end, over real loopback sockets: the full
// stack (Tcp_transport event loop -> Session_manager -> Server) serves
// connect/optimize/result, streaming + cancellation, concurrent clients
// with colliding request ids, write-side backpressure (reads pause when
// a client stops draining), load shedding at the admission queue and at
// the connection limit (both as typed "overloaded" errors), oversized
// and malformed lines, optimize_batch, and a clean network shutdown.

#include "quest/serve/tcp_transport.hpp"

#include <gtest/gtest.h>

#include <poll.h>
#include <sys/socket.h>
#include <netinet/in.h>
#include <arpa/inet.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "quest/common/timer.hpp"
#include "quest/io/instance_io.hpp"
#include "quest/io/json.hpp"
#include "quest/serve/server.hpp"
#include "quest/serve/session.hpp"
#include "support/helpers.hpp"

namespace quest {
namespace {

using namespace quest::serve;

/// Blocking line-oriented test client over one loopback socket.
class Client {
 public:
  explicit Client(std::uint16_t port, int receive_buffer_bytes = 0) {
    connect_to(port, receive_buffer_bytes);
  }

  ~Client() {
    if (fd_ >= 0) ::close(fd_);
  }

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  void send_line(const std::string& line) { send_raw(line + "\n"); }

  void send_raw(const std::string& bytes) {
    std::size_t sent = 0;
    while (sent < bytes.size()) {
      const ssize_t count =
          ::send(fd_, bytes.data() + sent, bytes.size() - sent, MSG_NOSIGNAL);
      ASSERT_GT(count, 0) << std::strerror(errno);
      sent += static_cast<std::size_t>(count);
    }
  }

  /// Reads one newline-terminated line; empty string on EOF/timeout
  /// (with a test failure on timeout).
  std::string read_line(double timeout_seconds = 30.0) {
    Timer timer;
    for (;;) {
      const auto newline = buffer_.find('\n');
      if (newline != std::string::npos) {
        const std::string line = buffer_.substr(0, newline);
        buffer_.erase(0, newline + 1);
        return line;
      }
      const double remaining = timeout_seconds - timer.seconds();
      if (remaining <= 0.0) {
        ADD_FAILURE() << "timed out reading a line";
        return {};
      }
      pollfd waiter{fd_, POLLIN, 0};
      const int ready =
          ::poll(&waiter, 1, static_cast<int>(remaining * 1000) + 1);
      if (ready <= 0) continue;
      char chunk[4096];
      const ssize_t count = ::recv(fd_, chunk, sizeof(chunk), 0);
      if (count == 0) return {};  // EOF
      if (count < 0) {
        if (errno == EINTR) continue;
        ADD_FAILURE() << "recv: " << std::strerror(errno);
        return {};
      }
      buffer_.append(chunk, static_cast<std::size_t>(count));
    }
  }

  /// Reads events until one matches `event` kind (optionally a specific
  /// request id); fails and returns null on timeout/EOF.
  io::Json wait_event(const std::string& event, const std::string& id = {},
                      double timeout_seconds = 30.0) {
    Timer timer;
    while (timer.seconds() < timeout_seconds) {
      const std::string line =
          read_line(timeout_seconds - timer.seconds());
      if (line.empty()) break;
      const io::Json parsed = io::Json::parse(line);
      if (parsed.at("event").as_string() != event) continue;
      if (!id.empty()) {
        const io::Json* event_id = parsed.find("id");
        if (event_id == nullptr || event_id->as_string() != id) continue;
      }
      return parsed;
    }
    ADD_FAILURE() << "no '" << event << "' event arrived";
    return io::Json();
  }

  bool at_eof(double timeout_seconds = 10.0) {
    Timer timer;
    while (timer.seconds() < timeout_seconds) {
      pollfd waiter{fd_, POLLIN, 0};
      if (::poll(&waiter, 1, 100) <= 0) continue;
      char chunk[4096];
      const ssize_t count = ::recv(fd_, chunk, sizeof(chunk), 0);
      if (count == 0) return true;
      if (count < 0 && errno != EINTR) return true;
      if (count > 0) buffer_.append(chunk, static_cast<std::size_t>(count));
    }
    return false;
  }

 private:
  // ASSERT macros return values and so cannot live in the constructor.
  void connect_to(std::uint16_t port, int receive_buffer_bytes) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    ASSERT_GE(fd_, 0) << std::strerror(errno);
    if (receive_buffer_bytes > 0) {
      // Before connect, so the advertised window is actually small —
      // the backpressure test needs the kernel pipes to fill up.
      ::setsockopt(fd_, SOL_SOCKET, SO_RCVBUF, &receive_buffer_bytes,
                   sizeof(receive_buffer_bytes));
    }
    sockaddr_in address{};
    address.sin_family = AF_INET;
    address.sin_port = htons(port);
    ::inet_pton(AF_INET, "127.0.0.1", &address.sin_addr);
    ASSERT_EQ(::connect(fd_, reinterpret_cast<sockaddr*>(&address),
                        sizeof(address)),
              0)
        << std::strerror(errno);
  }

  int fd_ = -1;
  std::string buffer_;
};

/// One full serving stack on an ephemeral loopback port, the transport
/// loop on its own thread — what quest_serve --tcp-port 0 builds.
class Stack {
 public:
  explicit Stack(Server_options server_options = {},
                 Tcp_options tcp_options = {},
                 Session_options session_options = {})
      : transport_(std::move(tcp_options)),
        server_(server_options),
        sessions_(server_, transport_, session_options),
        loop_([this] { shutdown_served_ = sessions_.serve(); }) {}

  ~Stack() { stop(); }

  std::uint16_t port() const { return transport_.port(); }
  Tcp_transport& transport() { return transport_; }
  Server& server() { return server_; }

  void stop() {
    if (!loop_.joinable()) return;
    transport_.stop();
    loop_.join();
    server_.shutdown();
  }

  /// Joins the loop without forcing a stop — for tests where a client's
  /// shutdown op ends the serve.
  bool wait_shutdown_served() {
    if (loop_.joinable()) loop_.join();
    return shutdown_served_;
  }

 private:
  Tcp_transport transport_;
  Server server_;
  Session_manager sessions_;
  bool shutdown_served_ = false;
  std::thread loop_;
};

std::string register_line(const std::string& name, std::size_t n,
                          std::uint64_t seed) {
  return std::string(R"({"op":"register","name":")") + name +
         R"(","instance":)" +
         io::to_json(test::selective_instance(n, seed)).dump() + "}";
}

constexpr const char* k_long_job =
    R"("optimizer":"annealing:iterations=2000000000",)"
    R"("budget":{"deadline_ms":60000},"cache":false)";

TEST(Tcp_transport_test, ConnectOptimizeResultOverARealSocket) {
  Stack stack;
  Client client(stack.port());
  client.send_line(register_line("prod", 10, 3));
  const io::Json registered = client.wait_event("registered");
  ASSERT_TRUE(registered.is_object());
  EXPECT_EQ(registered.at("services").as_number(), 10.0);

  client.send_line(
      R"({"op":"optimize","id":"r1","instance":"prod","optimizer":"bnb"})");
  const io::Json admitted = client.wait_event("admitted", "r1");
  ASSERT_TRUE(admitted.is_object());
  const io::Json result = client.wait_event("result", "r1");
  ASSERT_TRUE(result.is_object());
  EXPECT_EQ(result.at("termination").as_string(), "optimal");
  EXPECT_EQ(result.at("plan").as_array().size(), 10u);
}

TEST(Tcp_transport_test, StreamedIncumbentsAndCancellation) {
  Stack stack;
  Client client(stack.port());
  client.send_line(register_line("prod", 12, 7));
  client.wait_event("registered");

  client.send_line(std::string(R"({"op":"optimize","id":"slow",)") +
                   R"("instance":"prod","stream":true,)" + k_long_job + "}");
  ASSERT_TRUE(client.wait_event("incumbent", "slow").is_object());

  client.send_line(R"({"op":"cancel","id":"slow"})");
  const io::Json result = client.wait_event("result", "slow");
  ASSERT_TRUE(result.is_object());
  EXPECT_EQ(result.at("termination").as_string(), "cancelled");
  EXPECT_TRUE(result.at("complete").as_bool());  // best incumbent
}

TEST(Tcp_transport_test, ConcurrentClientsWithCollidingIdsGetTheirOwnResults) {
  Server_options options;
  options.workers = 4;
  Stack stack(options);

  // Eight clients, every one calling its request "r1" on its own
  // instance size — per-session id scoping plus correct event fan-out
  // means each client reads exactly its own plan back.
  constexpr int k_clients = 8;
  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  for (int index = 0; index < k_clients; ++index) {
    threads.emplace_back([&, index] {
      const std::size_t n = 6 + static_cast<std::size_t>(index);
      Client client(stack.port());
      const std::string name = "i" + std::to_string(index);
      client.send_line(register_line(name, n, 100 + index));
      client.wait_event("registered");
      client.send_line(std::string(R"({"op":"optimize","id":"r1",)") +
                       R"("instance":")" + name +
                       R"(","optimizer":"bnb","cache":false})");
      const io::Json result = client.wait_event("result", "r1");
      if (!result.is_object() ||
          result.at("plan").as_array().size() != n ||
          result.at("termination").as_string() != "optimal") {
        ++failures;
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(stack.server().stats().completed,
            static_cast<std::uint64_t>(k_clients));
}

TEST(Tcp_transport_test, BackpressurePausesReadsUntilTheClientDrains) {
  Tcp_options tcp;
  tcp.write_buffer_cap = 2048;   // a few stats replies fill it
  tcp.send_buffer_bytes = 4096;  // pin the kernel pipe small
  Stack stack(Server_options{}, tcp);
  Client client(stack.port(), /*receive_buffer_bytes=*/4096);

  // Burst stats ops without reading a single reply: the replies
  // overflow the pinned kernel buffers into the transport's outbound
  // buffer, blow past the cap, and the transport stops reading us.
  constexpr int k_ops = 300;
  std::string burst;
  for (int index = 0; index < k_ops; ++index) {
    burst += "{\"op\":\"stats\"}\n";
  }
  client.send_raw(burst);

  Timer timer;
  while (stack.transport().stats().reads_paused == 0 &&
         timer.seconds() < 20.0) {
    std::this_thread::yield();
  }
  EXPECT_GT(stack.transport().stats().reads_paused, 0u);

  // Drain: every single reply must still arrive, in order.
  for (int index = 0; index < k_ops; ++index) {
    const std::string line = client.read_line();
    ASSERT_FALSE(line.empty()) << "reply " << index;
    EXPECT_EQ(io::Json::parse(line).at("event").as_string(), "stats");
  }
}

TEST(Tcp_transport_test, AdmissionQueueOverloadIsShedWithATypedError) {
  Server_options options;
  options.workers = 1;
  options.queue_cap = 1;
  Stack stack(options);
  Client client(stack.port());
  client.send_line(register_line("prod", 12, 9));
  client.wait_event("registered");

  // One running + one queued fills the stack; the third must shed.
  // Sequenced via events so the outcome is deterministic: the streamed
  // incumbent proves "a" occupies the worker (not the queue) before "b"
  // is queued, and "b"'s admitted ack precedes "c".
  client.send_line(std::string(R"({"op":"optimize","id":"a",)") +
                   R"("instance":"prod","stream":true,)" + k_long_job + "}");
  ASSERT_TRUE(client.wait_event("incumbent", "a").is_object());
  client.send_line(std::string(R"({"op":"optimize","id":"b",)") +
                   R"("instance":"prod",)" + k_long_job + "}");
  ASSERT_TRUE(client.wait_event("admitted", "b").is_object());
  client.send_line(std::string(R"({"op":"optimize","id":"c",)") +
                   R"("instance":"prod",)" + k_long_job + "}");
  const io::Json shed = client.wait_event("error", "c");
  ASSERT_TRUE(shed.is_object());
  EXPECT_EQ(shed.at("code").as_string(), "overloaded");
  EXPECT_EQ(shed.at("queue_cap").as_number(), 1.0);

  // The bounded-queue counters appear on the stats event.
  client.send_line(R"({"op":"stats"})");
  const io::Json stats = client.wait_event("stats");
  ASSERT_TRUE(stats.is_object());
  EXPECT_EQ(stats.at("shed").as_number(), 1.0);
  EXPECT_EQ(stats.at("queue_cap").as_number(), 1.0);
  EXPECT_EQ(stats.at("sessions").as_number(), 1.0);

  for (const char* id : {"a", "b"}) {
    client.send_line(std::string(R"({"op":"cancel","id":")") + id + "\"}");
    client.wait_event("result", id);
  }
}

TEST(Tcp_transport_test, ConnectionLimitRefusesWithATypedErrorLine) {
  Tcp_options tcp;
  tcp.max_connections = 2;
  Stack stack(Server_options{}, tcp);

  Client first(stack.port());
  Client second(stack.port());
  // Both are live; prove it before the refusal case.
  first.send_line(R"({"op":"stats"})");
  ASSERT_TRUE(first.wait_event("stats").is_object());

  Client refused(stack.port());
  const std::string line = refused.read_line();
  ASSERT_FALSE(line.empty());
  const io::Json error = io::Json::parse(line);
  EXPECT_EQ(error.at("event").as_string(), "error");
  EXPECT_EQ(error.at("code").as_string(), "overloaded");
  EXPECT_TRUE(refused.at_eof());
  EXPECT_EQ(stack.transport().stats().refused, 1u);

  // The refusal freed nothing: the two real connections still serve.
  second.send_line(R"({"op":"stats"})");
  EXPECT_TRUE(second.wait_event("stats").is_object());
}

TEST(Tcp_transport_test, MalformedAndOversizedLinesGetTypedErrors) {
  Session_options session;
  session.max_line_bytes = 256;
  Stack stack(Server_options{}, Tcp_options{}, session);
  Client client(stack.port());

  client.send_line("this is not json");
  const io::Json parse_error = client.wait_event("error");
  ASSERT_TRUE(parse_error.is_object());
  EXPECT_EQ(parse_error.at("code").as_string(), "parse");

  client.send_line(std::string(1000, 'x'));
  const io::Json overflow = client.wait_event("error");
  ASSERT_TRUE(overflow.is_object());
  EXPECT_EQ(overflow.at("code").as_string(), "line-overflow");

  // Truncated JSON (a valid op cut mid-way) is a parse error, and the
  // session keeps serving afterwards.
  client.send_line(R"({"op":"optimize","id":"t1","inst)");
  EXPECT_EQ(client.wait_event("error").at("code").as_string(), "parse");
  client.send_line(R"({"op":"stats"})");
  EXPECT_TRUE(client.wait_event("stats").is_object());
}

TEST(Tcp_transport_test, OptimizeBatchFansOutPerElementResults) {
  Stack stack;
  Client client(stack.port());
  client.send_line(register_line("prod", 9, 21));
  client.wait_event("registered");

  client.send_line(
      R"({"op":"optimize_batch","id":"b1","requests":[)"
      R"({"instance":"prod","optimizer":"bnb","cache":false},)"
      R"({"instance":"prod","optimizer":"dp","cache":false},)"
      R"({"id":"named","instance":"prod","optimizer":"greedy","cache":false}]})");
  const io::Json batch = client.wait_event("batch-admitted", "b1");
  ASSERT_TRUE(batch.is_object());
  EXPECT_EQ(batch.at("count").as_number(), 3.0);
  // The elements run on parallel workers, so results arrive in any
  // order; collect all three and compare the id set.
  std::set<std::string> ids;
  for (int i = 0; i < 3; ++i) {
    const io::Json result = client.wait_event("result");
    ASSERT_TRUE(result.is_object());
    ids.insert(result.at("id").as_string());
  }
  EXPECT_EQ(ids, (std::set<std::string>{"b1/0", "b1/1", "named"}));
}

TEST(Tcp_transport_test, DisconnectCancelsThatClientsInFlightWork) {
  Server_options options;
  options.workers = 1;
  Stack stack(options);
  {
    Client doomed(stack.port());
    doomed.send_line(register_line("prod", 12, 31));
    doomed.wait_event("registered");
    doomed.send_line(std::string(R"({"op":"optimize","id":"gone",)") +
                     R"("instance":"prod",)" + k_long_job + "}");
    doomed.wait_event("admitted", "gone");
  }  // socket closes here

  // The disconnect cancels the job and frees the only worker — a new
  // client's request completes promptly.
  Client next(stack.port());
  Timer timer;
  while (stack.server().stats().completed < 1 && timer.seconds() < 20.0) {
    std::this_thread::yield();
  }
  EXPECT_EQ(stack.server().stats().cancelled, 1u);
  next.send_line(register_line("other", 8, 33));
  next.wait_event("registered");
  next.send_line(
      R"({"op":"optimize","id":"fresh","instance":"other","optimizer":"bnb"})");
  EXPECT_TRUE(next.wait_event("result", "fresh").is_object());
}

TEST(Tcp_transport_test, ShutdownOpDrainsFinalEventsToTheClient) {
  Stack stack;
  Client client(stack.port());
  client.send_line(R"({"op":"shutdown"})");
  // The bounded flush on stop() must deliver both shutdown events
  // before the connection closes.
  ASSERT_TRUE(client.wait_event("shutting-down").is_object());
  ASSERT_TRUE(client.wait_event("shutdown-complete").is_object());
  EXPECT_TRUE(client.at_eof());
  EXPECT_TRUE(stack.wait_shutdown_served());
}

}  // namespace
}  // namespace quest
