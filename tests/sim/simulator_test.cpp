// The discrete-event simulator must (a) conserve tuples, (b) converge to
// the bottleneck cost metric's prediction at scale, and (c) rank plans the
// way Eq. 1 ranks them — that is what makes Eq. 1 the right objective.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "quest/sim/simulator.hpp"
#include "quest/workload/generators.hpp"
#include "support/helpers.hpp"

namespace quest {
namespace {

using model::Instance;
using model::Plan;
using model::Send_policy;
using sim::Sim_config;
using sim::simulate;

TEST(Simulator_test, DeterministicSelectivityConservesExpectedTuples) {
  const Instance instance = test::selective_instance(6, 3);
  const Plan plan = Plan::identity(6);
  Sim_config config;
  config.input_tuples = 10'000;
  const auto result = simulate(instance, plan, config);

  double expected = static_cast<double>(config.input_tuples);
  for (model::Service_id id : plan) expected *= instance.selectivity(id);
  EXPECT_NEAR(static_cast<double>(result.tuples_delivered), expected,
              static_cast<double>(plan.size()) + 1);
}

TEST(Simulator_test, PerTupleTimeConvergesToPredictedCost) {
  for (std::uint64_t seed : {1u, 2u, 3u, 4u}) {
    const Instance instance = test::selective_instance(7, seed);
    const Plan plan = Plan::identity(7);
    Sim_config config;
    config.input_tuples = 20'000;
    config.block_size = 16;
    const auto result = simulate(instance, plan, config);
    EXPECT_NEAR(result.per_tuple_time / result.predicted_cost, 1.0, 0.08)
        << "seed " << seed;
  }
}

TEST(Simulator_test, OverlappedPolicyConvergesToo) {
  const Instance instance = test::selective_instance(6, 9);
  const Plan plan = Plan::identity(6);
  Sim_config config;
  config.input_tuples = 20'000;
  config.model = model::Cost_model::independent(Send_policy::overlapped);
  const auto result = simulate(instance, plan, config);
  EXPECT_NEAR(result.per_tuple_time / result.predicted_cost, 1.0, 0.08);
}

TEST(Simulator_test, ExpandingServicesDeliverMoreTuplesThanInput) {
  Rng rng(5);
  workload::Uniform_spec spec;
  spec.n = 4;
  spec.selectivity_min = 1.5;
  spec.selectivity_max = 2.0;
  const Instance instance = workload::make_uniform(spec, rng);
  Sim_config config;
  config.input_tuples = 1'000;
  const auto result = simulate(instance, Plan::identity(4), config);
  EXPECT_GT(result.tuples_delivered, config.input_tuples);
}

TEST(Simulator_test, RanksPlansLikeTheCostModel) {
  // For several random instances, compare two plans: the one with lower
  // Eq.-1 cost must have (weakly) lower simulated makespan.
  int agreements = 0;
  int trials = 0;
  for (std::uint64_t seed = 1; seed <= 12; ++seed) {
    const Instance instance = test::selective_instance(6, seed * 7);
    Rng rng(seed);
    Plan a;
    Plan b;
    for (const auto id : rng.permutation(6)) {
      a.append(static_cast<model::Service_id>(id));
    }
    for (const auto id : rng.permutation(6)) {
      b.append(static_cast<model::Service_id>(id));
    }
    const double cost_a = model::bottleneck_cost(instance, a);
    const double cost_b = model::bottleneck_cost(instance, b);
    if (std::fabs(cost_a - cost_b) / std::max(cost_a, cost_b) < 0.10) {
      continue;  // too close to call; pipeline fill effects could flip it
    }
    Sim_config config;
    config.input_tuples = 10'000;
    const double time_a = simulate(instance, a, config).makespan;
    const double time_b = simulate(instance, b, config).makespan;
    ++trials;
    if ((cost_a < cost_b) == (time_a < time_b)) ++agreements;
  }
  ASSERT_GT(trials, 5);
  EXPECT_EQ(agreements, trials);
}

TEST(Simulator_test, StochasticModeApproximatesExpectation) {
  const Instance instance = test::selective_instance(5, 21);
  Sim_config config;
  config.input_tuples = 40'000;
  config.selectivity_mode = sim::Selectivity_mode::stochastic;
  config.seed = 77;
  const auto result = simulate(instance, Plan::identity(5), config);
  double expected = static_cast<double>(config.input_tuples);
  for (model::Service_id id = 0; id < 5; ++id) {
    expected *= instance.selectivity(id);
  }
  EXPECT_NEAR(static_cast<double>(result.tuples_delivered) / expected, 1.0,
              0.10);
}

TEST(Simulator_test, StochasticModeIsSeedDeterministic) {
  const Instance instance = test::selective_instance(5, 2);
  Sim_config config;
  config.selectivity_mode = sim::Selectivity_mode::stochastic;
  config.input_tuples = 2'000;
  config.seed = 5;
  const auto a = simulate(instance, Plan::identity(5), config);
  const auto b = simulate(instance, Plan::identity(5), config);
  EXPECT_EQ(a.tuples_delivered, b.tuples_delivered);
  EXPECT_DOUBLE_EQ(a.makespan, b.makespan);
}

TEST(Simulator_test, CostJitterChangesTimingNotCounts) {
  const Instance instance = test::selective_instance(5, 6);
  Sim_config plain;
  plain.input_tuples = 3'000;
  Sim_config jittered = plain;
  jittered.cost_jitter = 0.3;
  jittered.seed = 17;
  const auto a = simulate(instance, Plan::identity(5), plain);
  const auto b = simulate(instance, Plan::identity(5), jittered);
  EXPECT_EQ(a.tuples_delivered, b.tuples_delivered);
  EXPECT_NE(a.makespan, b.makespan);
  // Jitter is symmetric, so the mean effect is small.
  EXPECT_NEAR(b.makespan / a.makespan, 1.0, 0.1);
}

TEST(Simulator_test, PerBlockOverheadRaisesEffectiveTransferCost) {
  const Instance instance = test::selective_instance(5, 8);
  Sim_config small_blocks;
  small_blocks.input_tuples = 5'000;
  small_blocks.block_size = 1;
  small_blocks.per_block_overhead = 1.0;
  Sim_config big_blocks = small_blocks;
  big_blocks.block_size = 128;
  const auto slow = simulate(instance, Plan::identity(5), small_blocks);
  const auto fast = simulate(instance, Plan::identity(5), big_blocks);
  EXPECT_GT(slow.makespan, fast.makespan);
}

TEST(Simulator_test, UtilizationIdentifiesTheBottleneck) {
  const Instance instance = test::selective_instance(7, 13);
  const Plan plan = Plan::identity(7);
  Sim_config config;
  config.input_tuples = 20'000;
  const auto result = simulate(instance, plan, config);
  const auto breakdown = model::cost_breakdown(instance, plan);
  EXPECT_EQ(result.busiest_position, breakdown.bottleneck_position);
  EXPECT_GT(result.services[result.busiest_position].utilization, 0.85);
  for (const auto& s : result.services) {
    EXPECT_LE(s.utilization, 1.0 + 1e-9);
  }
}

TEST(Simulator_test, MetricsAreInternallyConsistent) {
  const Instance instance = test::sink_instance(6, 4);
  const Plan plan = Plan::identity(6);
  Sim_config config;
  config.input_tuples = 2'000;
  config.block_size = 8;
  const auto result = simulate(instance, plan, config);
  ASSERT_EQ(result.services.size(), 6u);
  EXPECT_EQ(result.services[0].tuples_in, config.input_tuples);
  for (std::size_t p = 0; p + 1 < 6; ++p) {
    EXPECT_EQ(result.services[p].tuples_out,
              result.services[p + 1].tuples_in);
  }
  EXPECT_EQ(result.services[5].tuples_out, result.tuples_delivered);
  EXPECT_GT(result.makespan, 0.0);
  EXPECT_DOUBLE_EQ(
      result.per_tuple_time,
      result.makespan / static_cast<double>(config.input_tuples));
}

TEST(Simulator_test, SingleServicePipeline) {
  const Instance instance({{2.0, 0.5, "only"}},
                          Matrix<double>::square(1, 0.0), {1.0});
  Sim_config config;
  config.input_tuples = 1'000;
  const auto result = simulate(instance, Plan({0}), config);
  // makespan ~ N * (c + sigma * t_sink) = 1000 * 2.5.
  EXPECT_NEAR(result.makespan, 2500.0, 100.0);
}

TEST(Simulator_test, MakespanIsMonotoneInInputSize) {
  const Instance instance = test::selective_instance(6, 12);
  const Plan plan = Plan::identity(6);
  double previous = 0.0;
  for (const std::uint64_t tuples : {100u, 1'000u, 5'000u, 20'000u}) {
    Sim_config config;
    config.input_tuples = tuples;
    const double makespan = simulate(instance, plan, config).makespan;
    EXPECT_GT(makespan, previous);
    previous = makespan;
  }
}

TEST(Simulator_test, BlockSizeDoesNotChangeDeliveredCount) {
  const Instance instance = test::selective_instance(6, 15);
  const Plan plan = Plan::identity(6);
  Sim_config config;
  config.input_tuples = 4'000;
  config.block_size = 1;
  const auto reference = simulate(instance, plan, config);
  for (const std::uint64_t block : {4u, 32u, 512u}) {
    config.block_size = block;
    EXPECT_EQ(simulate(instance, plan, config).tuples_delivered,
              reference.tuples_delivered);
  }
}

TEST(Simulator_test, ThroughputScalesInverselyWithBottleneck) {
  // Doubling every cost and transfer doubles the per-tuple time.
  const Instance base = test::selective_instance(5, 33);
  std::vector<model::Service> scaled_services;
  for (const auto& s : base.services()) {
    scaled_services.push_back({s.cost * 2.0, s.selectivity, s.name});
  }
  Matrix<double> scaled_t = Matrix<double>::square(5, 0.0);
  for (model::Service_id i = 0; i < 5; ++i) {
    for (model::Service_id j = 0; j < 5; ++j) {
      if (i != j) scaled_t(i, j) = base.transfer(i, j) * 2.0;
    }
  }
  const Instance doubled(std::move(scaled_services), std::move(scaled_t));
  Sim_config config;
  config.input_tuples = 10'000;
  const Plan plan = Plan::identity(5);
  const double t1 = simulate(base, plan, config).per_tuple_time;
  const double t2 = simulate(doubled, plan, config).per_tuple_time;
  EXPECT_NEAR(t2 / t1, 2.0, 0.02);
}

TEST(Simulator_test, RejectsMalformedConfig) {
  const Instance instance = test::selective_instance(3, 1);
  Sim_config config;
  config.input_tuples = 0;
  EXPECT_THROW(simulate(instance, Plan::identity(3), config),
               Precondition_error);
  config.input_tuples = 10;
  config.block_size = 0;
  EXPECT_THROW(simulate(instance, Plan::identity(3), config),
               Precondition_error);
  config.block_size = 4;
  config.cost_jitter = 1.0;
  EXPECT_THROW(simulate(instance, Plan::identity(3), config),
               Precondition_error);
  config.cost_jitter = 0.0;
  EXPECT_THROW(simulate(instance, Plan({0, 1}), config), Precondition_error);
}

}  // namespace
}  // namespace quest
