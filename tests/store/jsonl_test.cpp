// The shared JSONL record discipline (quest/store/jsonl.hpp): seal /
// verify round trips, tamper refusal, the strict hex64 parser, and the
// atomic-replace write path. Both the snapshot format and the cluster
// layer's registration journal sit on these helpers, so a semantics
// change here is a durability-format change — these tests pin it.

#include "quest/store/jsonl.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <iterator>
#include <string>

#include "quest/common/error.hpp"
#include "quest/io/json.hpp"

namespace quest {
namespace {

/// A temp path that cleans up after itself.
struct Temp_path {
  std::string path;
  explicit Temp_path(const std::string& name)
      : path(::testing::TempDir() + name) {
    std::remove(path.c_str());
  }
  ~Temp_path() {
    std::remove(path.c_str());
    std::remove((path + ".tmp").c_str());
  }
};

io::Json sample_record() {
  io::Json record;
  record.set("type", "register");
  record.set("name", "prod");
  record.set("weight", 2.5);
  return record;
}

TEST(Jsonl_test, SealedLinesVerifyAndRoundTrip) {
  const std::string line = store::sealed_line(sample_record());
  io::Json loaded;
  ASSERT_TRUE(store::checked_record(line, loaded));
  EXPECT_EQ(loaded.at("type").as_string(), "register");
  EXPECT_EQ(loaded.at("name").as_string(), "prod");
  EXPECT_EQ(loaded.at("weight").as_number(), 2.5);
  // The crc field is part of the parsed record (hex64 form).
  EXPECT_EQ(loaded.at("crc").as_string().size(), 16u);
}

TEST(Jsonl_test, ChecksumIsByteWiseFnv1a) {
  // The FNV-1a offset basis: hashing nothing yields it exactly. Pinned
  // so the on-disk checksum can never silently change algorithm.
  EXPECT_EQ(store::jsonl_checksum(""), 0xcbf29ce484222325ull);
  EXPECT_NE(store::jsonl_checksum("a"), store::jsonl_checksum("b"));
}

TEST(Jsonl_test, TamperedRecordsAreRefused) {
  const std::string line = store::sealed_line(sample_record());
  io::Json ignored;

  // Flip one payload byte: "prod" -> "prad".
  std::string tampered = line;
  tampered.replace(tampered.find("prod"), 4, "prad");
  EXPECT_FALSE(store::checked_record(tampered, ignored));

  // Flip one crc digit.
  std::string bad_crc = line;
  const auto crc_pos = bad_crc.rfind("\"crc\":\"") + 7;
  bad_crc[crc_pos] = bad_crc[crc_pos] == '0' ? '1' : '0';
  EXPECT_FALSE(store::checked_record(bad_crc, ignored));

  // Truncation, non-objects, and records with no crc at all.
  EXPECT_FALSE(store::checked_record(line.substr(0, line.size() / 2),
                                     ignored));
  EXPECT_FALSE(store::checked_record("[1,2,3]", ignored));
  EXPECT_FALSE(store::checked_record(sample_record().dump(), ignored));
  EXPECT_FALSE(store::checked_record("", ignored));
}

TEST(Jsonl_test, ParseHex64IsStrict) {
  std::uint64_t value = 0;
  EXPECT_TRUE(store::parse_hex64("00000000000000ff", value));
  EXPECT_EQ(value, 0xffu);
  EXPECT_TRUE(store::parse_hex64("cbf29ce484222325", value));
  EXPECT_EQ(value, 0xcbf29ce484222325ull);

  // Wrong width, upper case, stray characters: all refused.
  EXPECT_FALSE(store::parse_hex64("ff", value));
  EXPECT_FALSE(store::parse_hex64("00000000000000FF", value));
  EXPECT_FALSE(store::parse_hex64("00000000000000fg", value));
  EXPECT_FALSE(store::parse_hex64("00000000000000ff0", value));
  EXPECT_FALSE(store::parse_hex64("", value));
}

TEST(Jsonl_test, AtomicWriteReplacesWholeFiles) {
  Temp_path temp("quest_jsonl_atomic_test");
  store::atomic_write_file(temp.path, "first\n");
  store::atomic_write_file(temp.path, "second\n");

  std::ifstream in(temp.path);
  std::string contents((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
  EXPECT_EQ(contents, "second\n");
  // The staging file never survives a successful replace.
  std::ifstream staging(temp.path + ".tmp");
  EXPECT_FALSE(staging.is_open());
}

TEST(Jsonl_test, AtomicWriteFailureThrows) {
  EXPECT_THROW(
      store::atomic_write_file("/nonexistent-dir/quest_jsonl_test", "x"),
      Error);
}

}  // namespace
}  // namespace quest
