// Router unit surface: the stats-merge algebra (counters summed, uptime
// maxed, the nested cache object summed fieldwise, fleet-health fields
// added) and option validation. The full proxy path — forwarding,
// shedding, reconnection — is exercised end to end by the serve/
// router_smoke ctest entry (scripts/loadgen.py --router).

#include "quest/store/router.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "quest/common/error.hpp"
#include "quest/io/json.hpp"
#include "quest/serve/transport.hpp"

namespace quest {
namespace {

io::Json backend_stats(double admitted, double completed, double uptime,
                       double cache_hits) {
  io::Json cache;
  cache.set("lookups", io::Json(cache_hits + 1));
  cache.set("hits", io::Json(cache_hits));
  cache.set("entries", io::Json(2.0));
  io::Json event;
  event.set("event", io::Json("stats"));
  event.set("workers", io::Json(4.0));
  event.set("admitted", io::Json(admitted));
  event.set("completed", io::Json(completed));
  event.set("uptime_seconds", io::Json(uptime));
  event.set("cache", std::move(cache));
  return event;
}

TEST(Router_test, MergeSumsCountersAndMaxesUptime) {
  const std::vector<io::Json> events = {
      backend_stats(5, 4, 10.5, 2),
      backend_stats(7, 7, 3.25, 1),
  };
  const io::Json merged = store::merge_stats_events(events, 3);
  EXPECT_EQ(merged.at("event").as_string(), "stats");
  EXPECT_EQ(merged.at("shards").as_number(), 3.0);
  EXPECT_EQ(merged.at("shards_live").as_number(), 2.0);
  EXPECT_EQ(merged.at("admitted").as_number(), 12.0);
  EXPECT_EQ(merged.at("completed").as_number(), 11.0);
  EXPECT_EQ(merged.at("workers").as_number(), 8.0);
  // Uptime is a max, not a sum: the fleet is as old as its oldest member.
  EXPECT_EQ(merged.at("uptime_seconds").as_number(), 10.5);
  EXPECT_EQ(merged.at("cache").at("hits").as_number(), 3.0);
  EXPECT_EQ(merged.at("cache").at("lookups").as_number(), 5.0);
  EXPECT_EQ(merged.at("cache").at("entries").as_number(), 4.0);
}

TEST(Router_test, MergeToleratesHeterogeneousEvents) {
  // One backend runs with a bounded queue (extra fields), one without;
  // one reports durability counters. The merge takes the union.
  io::Json bounded = backend_stats(1, 1, 2.0, 0);
  bounded.set("shed", io::Json(3.0));
  bounded.set("queue_cap", io::Json(8.0));
  io::Json durable = backend_stats(2, 2, 1.0, 0);
  durable.set("snapshot_writes", io::Json(5.0));
  const io::Json merged =
      store::merge_stats_events({bounded, durable}, 2);
  EXPECT_EQ(merged.at("shed").as_number(), 3.0);
  EXPECT_EQ(merged.at("snapshot_writes").as_number(), 5.0);
  EXPECT_EQ(merged.at("admitted").as_number(), 3.0);
}

TEST(Router_test, MergeOfNothingStillReportsFleetShape) {
  const io::Json merged = store::merge_stats_events({}, 4);
  EXPECT_EQ(merged.at("shards").as_number(), 4.0);
  EXPECT_EQ(merged.at("shards_live").as_number(), 0.0);
}

TEST(Router_test, RejectsAnEmptyBackendList) {
  serve::Stdio_transport transport;
  store::Router_options options;  // no backends
  EXPECT_THROW(store::Router(std::move(options), transport), Error);
}

}  // namespace
}  // namespace quest
