// Shard_map: deterministic cross-process ownership, bounded imbalance at
// smoke-scale fleets, and the consistent-hashing contract — growing K to
// K+1 only moves keys onto the new shard, never between old ones.

#include "quest/store/shard_map.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "quest/common/error.hpp"
#include "quest/common/hash.hpp"

namespace quest {
namespace {

using store::Shard_map;

std::vector<std::uint64_t> sample_keys(std::size_t count) {
  std::vector<std::uint64_t> keys;
  keys.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    // Fingerprint-like keys: hashed, not sequential.
    Fnv1a hash;
    hash.mix(std::uint64_t{0x9e3779b97f4a7c15ull});
    hash.mix(static_cast<std::uint64_t>(i));
    keys.push_back(hash.digest());
  }
  return keys;
}

TEST(Shard_map_test, OwnershipIsDeterministicAndInRange) {
  const Shard_map a(4), b(4);
  for (const std::uint64_t key : sample_keys(512)) {
    const std::size_t shard = a.shard_of(key);
    EXPECT_LT(shard, 4u);
    // Two independently constructed maps (a router restart, an external
    // tool) agree on every owner.
    EXPECT_EQ(shard, b.shard_of(key));
  }
  EXPECT_EQ(a.shards(), 4u);
  EXPECT_EQ(a.replicas(), 64u);
}

TEST(Shard_map_test, SingleShardOwnsEverything) {
  const Shard_map map(1);
  for (const std::uint64_t key : sample_keys(64)) {
    EXPECT_EQ(map.shard_of(key), 0u);
  }
}

TEST(Shard_map_test, LoadSpreadsAcrossShards) {
  const Shard_map map(4);
  std::vector<std::size_t> owned(4, 0);
  const auto keys = sample_keys(8192);
  for (const std::uint64_t key : keys) ++owned[map.shard_of(key)];
  for (std::size_t shard = 0; shard < 4; ++shard) {
    // 64 ring points per shard keep the imbalance moderate; a degenerate
    // mapping (one shard starved or hogging) fails loudly here.
    EXPECT_GT(owned[shard], keys.size() / 20) << "shard " << shard;
    EXPECT_LT(owned[shard], keys.size() / 2) << "shard " << shard;
  }
}

TEST(Shard_map_test, GrowthOnlyMovesKeysToTheNewShard) {
  const Shard_map before(4), after(5);
  std::size_t moved = 0;
  const auto keys = sample_keys(4096);
  for (const std::uint64_t key : keys) {
    const std::size_t old_owner = before.shard_of(key);
    const std::size_t new_owner = after.shard_of(key);
    if (new_owner != old_owner) {
      // The consistent-hashing contract: a key never migrates between
      // pre-existing shards — resizing cannot shuffle warm caches among
      // survivors.
      EXPECT_EQ(new_owner, 4u) << "key moved between old shards";
      ++moved;
    }
  }
  // Roughly 1/5 of the space lands on the new shard.
  EXPECT_GT(moved, keys.size() / 20);
  EXPECT_LT(moved, keys.size() / 2);
}

TEST(Shard_map_test, MoreReplicasSmoothTheSplit) {
  // Not a statistical assertion — just that replica count is honored
  // and alternate values still produce a total mapping.
  const Shard_map map(3, 128);
  EXPECT_EQ(map.replicas(), 128u);
  for (const std::uint64_t key : sample_keys(64)) {
    EXPECT_LT(map.shard_of(key), 3u);
  }
}

TEST(Shard_map_test, RejectsEmptyConfigurations) {
  EXPECT_THROW(Shard_map(0), Error);
  EXPECT_THROW(Shard_map(2, 0), Error);
}

}  // namespace
}  // namespace quest
