// Shard_map: deterministic cross-process ownership, bounded imbalance at
// smoke-scale fleets, and the consistent-hashing contract — growing K to
// K+1 only moves keys onto the new shard, never between old ones. The
// replica walk (replicas(fingerprint, R)) is checked property-style: it
// must inherit both the determinism and the movement bound, since the
// replicated router's repair logic assumes replica sets never reshuffle
// survivors on fleet growth.

#include "quest/store/shard_map.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "quest/common/error.hpp"
#include "quest/common/hash.hpp"
#include "support/property.hpp"

namespace quest {
namespace {

using store::Shard_map;
using test::check_property;
using test::no_shrink;
using test::Property_config;

std::vector<std::uint64_t> sample_keys(std::size_t count) {
  std::vector<std::uint64_t> keys;
  keys.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    // Fingerprint-like keys: hashed, not sequential.
    Fnv1a hash;
    hash.mix(std::uint64_t{0x9e3779b97f4a7c15ull});
    hash.mix(static_cast<std::uint64_t>(i));
    keys.push_back(hash.digest());
  }
  return keys;
}

TEST(Shard_map_test, OwnershipIsDeterministicAndInRange) {
  const Shard_map a(4), b(4);
  for (const std::uint64_t key : sample_keys(512)) {
    const std::size_t shard = a.shard_of(key);
    EXPECT_LT(shard, 4u);
    // Two independently constructed maps (a router restart, an external
    // tool) agree on every owner.
    EXPECT_EQ(shard, b.shard_of(key));
  }
  EXPECT_EQ(a.shards(), 4u);
  EXPECT_EQ(a.ring_points(), 64u);
}

TEST(Shard_map_test, SingleShardOwnsEverything) {
  const Shard_map map(1);
  for (const std::uint64_t key : sample_keys(64)) {
    EXPECT_EQ(map.shard_of(key), 0u);
  }
}

TEST(Shard_map_test, LoadSpreadsAcrossShards) {
  const Shard_map map(4);
  std::vector<std::size_t> owned(4, 0);
  const auto keys = sample_keys(8192);
  for (const std::uint64_t key : keys) ++owned[map.shard_of(key)];
  for (std::size_t shard = 0; shard < 4; ++shard) {
    // 64 ring points per shard keep the imbalance moderate; a degenerate
    // mapping (one shard starved or hogging) fails loudly here.
    EXPECT_GT(owned[shard], keys.size() / 20) << "shard " << shard;
    EXPECT_LT(owned[shard], keys.size() / 2) << "shard " << shard;
  }
}

TEST(Shard_map_test, GrowthOnlyMovesKeysToTheNewShard) {
  const Shard_map before(4), after(5);
  std::size_t moved = 0;
  const auto keys = sample_keys(4096);
  for (const std::uint64_t key : keys) {
    const std::size_t old_owner = before.shard_of(key);
    const std::size_t new_owner = after.shard_of(key);
    if (new_owner != old_owner) {
      // The consistent-hashing contract: a key never migrates between
      // pre-existing shards — resizing cannot shuffle warm caches among
      // survivors.
      EXPECT_EQ(new_owner, 4u) << "key moved between old shards";
      ++moved;
    }
  }
  // Roughly 1/5 of the space lands on the new shard.
  EXPECT_GT(moved, keys.size() / 20);
  EXPECT_LT(moved, keys.size() / 2);
}

TEST(Shard_map_test, MoreRingPointsSmoothTheSplit) {
  // Not a statistical assertion — just that the ring-point count is
  // honored and alternate values still produce a total mapping.
  const Shard_map map(3, 128);
  EXPECT_EQ(map.ring_points(), 128u);
  for (const std::uint64_t key : sample_keys(64)) {
    EXPECT_LT(map.shard_of(key), 3u);
  }
}

TEST(Shard_map_test, RejectsEmptyConfigurations) {
  EXPECT_THROW(Shard_map(0), Error);
  EXPECT_THROW(Shard_map(2, 0), Error);
}

// ---- replica-walk properties ------------------------------------------

/// One generated replica-set case: a fleet size, a replication factor
/// within it, and a fingerprint.
struct Replica_case {
  std::size_t shards;
  std::size_t count;
  std::uint64_t fingerprint;
};

Replica_case gen_replica_case(Rng& rng) {
  Replica_case value;
  value.shards = 1 + rng.uniform_int(std::uint64_t{8});
  value.count = 1 + rng.uniform_int(static_cast<std::uint64_t>(value.shards));
  value.fingerprint = rng();
  return value;
}

TEST(Shard_map_property, ReplicasAreDistinctInRangeAndExactlyR) {
  check_property<Replica_case>(
      "replicas(fp, R) returns R distinct shards whenever K >= R", {},
      gen_replica_case, no_shrink<Replica_case>,
      [](const Replica_case& v) {
        const Shard_map map(v.shards);
        const auto owners = map.replicas(v.fingerprint, v.count);
        const std::set<std::size_t> distinct(owners.begin(), owners.end());
        const bool in_range = std::all_of(
            owners.begin(), owners.end(),
            [&](std::size_t shard) { return shard < v.shards; });
        return QUEST_PROP(owners.size() == v.count &&
                          distinct.size() == owners.size() && in_range)
               << "K = " << v.shards << ", R = " << v.count << ", fp = "
               << v.fingerprint << ", got " << owners.size() << " owners ("
               << distinct.size() << " distinct)";
      });
}

TEST(Shard_map_property, ReplicasAreDeterministicAcrossProcesses) {
  check_property<Replica_case>(
      "independently built maps agree on every replica set", {},
      gen_replica_case, no_shrink<Replica_case>,
      [](const Replica_case& v) {
        // Two maps built from scratch stand in for a router restart (or a
        // second router): byte-for-byte agreement, order included.
        const Shard_map a(v.shards), b(v.shards);
        const auto lhs = a.replicas(v.fingerprint, v.count);
        const auto rhs = b.replicas(v.fingerprint, v.count);
        return QUEST_PROP(lhs == rhs)
               << "K = " << v.shards << ", R = " << v.count
               << ", fp = " << v.fingerprint;
      });
}

TEST(Shard_map_property, PrimaryReplicaIsShardOf) {
  check_property<Replica_case>(
      "replicas(fp, 1) is exactly {shard_of(fp)}", {}, gen_replica_case,
      no_shrink<Replica_case>, [](const Replica_case& v) {
        const Shard_map map(v.shards);
        const auto owners = map.replicas(v.fingerprint, 1);
        return QUEST_PROP(owners.size() == 1 &&
                          owners.front() == map.shard_of(v.fingerprint))
               << "K = " << v.shards << ", fp = " << v.fingerprint;
      });
}

TEST(Shard_map_property, GrowthOnlyInsertsTheNewShardIntoReplicaSets) {
  check_property<Replica_case>(
      "K -> K+1 growth only inserts the new shard; survivors keep order",
      {}, gen_replica_case, no_shrink<Replica_case>,
      [](const Replica_case& v) {
        const Shard_map before(v.shards), after(v.shards + 1);
        const auto old_set = before.replicas(v.fingerprint, v.count);
        const auto new_set = after.replicas(v.fingerprint, v.count);

        // Any member of the new set that is not the new shard must come
        // from the old set, in the old relative order — the new shard may
        // insert itself (displacing the tail) but never reshuffle
        // survivors. That is what lets the replicated router grow a
        // fleet without invalidating every replica placement at once.
        std::vector<std::size_t> survivors;
        for (const std::size_t shard : new_set) {
          if (shard != v.shards) survivors.push_back(shard);
        }
        std::size_t cursor = 0;
        bool subsequence = true;
        for (const std::size_t shard : survivors) {
          while (cursor < old_set.size() && old_set[cursor] != shard) {
            ++cursor;
          }
          if (cursor == old_set.size()) {
            subsequence = false;
            break;
          }
          ++cursor;
        }
        return QUEST_PROP(subsequence)
               << "K = " << v.shards << ", R = " << v.count
               << ", fp = " << v.fingerprint;
      });
}

}  // namespace
}  // namespace quest
