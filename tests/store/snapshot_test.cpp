// Snapshot format: round trip of the instance store plus both plan-cache
// tiers (byte-identical on rewrite), and the refusal rules — bumped
// format version, truncated and bit-flipped records, tampered model keys
// and fingerprints, cancelled exact-tier entries — each refused entry by
// entry without aborting the load.

#include "quest/store/snapshot.hpp"

#include <gtest/gtest.h>

#include <bit>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "quest/common/rng.hpp"

#include "quest/io/fingerprint.hpp"
#include "quest/io/json.hpp"
#include "quest/model/cost_model.hpp"
#include "quest/serve/instance_store.hpp"
#include "quest/serve/plan_cache.hpp"
#include "support/helpers.hpp"

namespace quest {
namespace {

using serve::Cache_key;
using serve::Cached_plan;
using serve::Instance_store;
using serve::Plan_cache;

std::string temp_path(const std::string& name) {
  const std::string path =
      ::testing::TempDir() + "quest_snapshot_test_" + name + ".qsnap";
  std::remove(path.c_str());  // stale files from earlier runs
  return path;
}

std::vector<std::string> read_lines(const std::string& path) {
  std::ifstream file(path, std::ios::binary);
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(file, line)) lines.push_back(line);
  return lines;
}

void write_lines(const std::string& path,
                 const std::vector<std::string>& lines) {
  std::ofstream file(path, std::ios::binary | std::ios::trunc);
  for (const auto& line : lines) file << line << '\n';
}

std::string read_all(const std::string& path) {
  std::ifstream file(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(file), {});
}

/// Replaces one field of a record and recomputes its crc — a forgery
/// that passes the checksum, to prove the *semantic* refusal rules fire.
std::string reseal_with(const std::string& line, const std::string& field,
                        io::Json replacement) {
  const io::Json record = io::Json::parse(line);
  io::Json rebuilt;
  for (const auto& [key, value] : record.as_object()) {
    if (key == "crc") continue;
    rebuilt.set(key, key == field ? replacement : value);
  }
  rebuilt.set("crc",
              io::Json(io::hex64(store::snapshot_checksum(rebuilt.dump()))));
  return rebuilt.dump();
}

std::size_t line_of_type(const std::vector<std::string>& lines,
                         const std::string& type) {
  const std::string tag = "\"type\":\"" + type + "\"";
  for (std::size_t i = 0; i < lines.size(); ++i) {
    if (lines[i].find(tag) != std::string::npos) return i;
  }
  ADD_FAILURE() << "no record of type " << type;
  return 0;
}

const std::string sequential_key = model::Cost_model().key();

std::string correlated_key(std::size_t n) {
  return model::parse_cost_model_spec("correlated:strength=0.5,seed=7",
                                      "sequential")
      .bind(n)
      .key();
}

/// A store (6- and 5-service instances) and a cache holding two exact
/// entries (with warm shadows) plus one explicitly-warm cancelled entry.
struct Fixture {
  Instance_store store;
  Plan_cache cache;
  std::uint64_t alpha = 0;
  std::uint64_t beta = 0;
  Cache_key optimal_key;
  Cache_key budget_key;

  Fixture() {
    alpha = store.put("alpha", test::selective_instance(6, 1), std::nullopt)
                ->fingerprint;
    beta = store.put("beta", test::selective_instance(5, 2), std::nullopt)
               ->fingerprint;
    optimal_key =
        Cache_key{alpha, sequential_key, "bnb", "w:*|t:*|c:0", 3};
    cache.insert(optimal_key,
                 Cached_plan{model::Plan({2, 0, 1, 3, 4, 5}), 1.0 / 3.0,
                             opt::Termination::optimal, true});
    budget_key =
        Cache_key{alpha, correlated_key(6), "portfolio", "w:*|t:13|c:0", 0};
    cache.insert(budget_key,
                 Cached_plan{model::Plan({0, 1, 2, 3, 4, 5}),
                             2.718281828459045,
                             opt::Termination::budget_exhausted, false});
    cache.remember_best(beta, sequential_key,
                        Cached_plan{model::Plan({4, 3, 2, 1, 0}), 0.125,
                                    opt::Termination::cancelled, false});
  }
};

// 1 header + 2 instances + 2 exact + 3 warm (each insert() shadows into
// the warm tier; remember_best adds the third).
constexpr std::size_t k_fixture_records = 8;

TEST(Snapshot_test, RoundTripIsByteIdenticalAndServesExactHits) {
  Fixture fixture;
  const std::string path = temp_path("roundtrip");
  const store::Write_report written =
      store::write_snapshot(path, fixture.store, fixture.cache);
  EXPECT_EQ(written.records, k_fixture_records);
  EXPECT_GT(written.bytes, 0u);
  EXPECT_EQ(written.bytes, read_all(path).size());

  Instance_store restored_store;
  Plan_cache restored_cache;
  const store::Load_report loaded =
      store::load_snapshot(path, restored_store, restored_cache);
  EXPECT_TRUE(loaded.file_found);
  EXPECT_TRUE(loaded.header_ok);
  EXPECT_EQ(loaded.instances_loaded, 2u);
  EXPECT_EQ(loaded.exact_loaded, 2u);
  EXPECT_EQ(loaded.warm_loaded, 3u);
  EXPECT_EQ(loaded.stale_refused, 0u);
  EXPECT_EQ(loaded.loaded(), 7u);

  // Rewriting the restored state reproduces the snapshot byte for byte:
  // nothing was lost, reformatted, or reordered across the boot.
  const std::string path2 = temp_path("roundtrip2");
  store::write_snapshot(path2, restored_store, restored_cache);
  EXPECT_EQ(read_all(path), read_all(path2));

  const auto alpha = restored_store.get("alpha");
  ASSERT_NE(alpha, nullptr);
  EXPECT_EQ(alpha->fingerprint, fixture.alpha);
  EXPECT_EQ(alpha->instance.size(), 6u);
  ASSERT_NE(restored_store.get("beta"), nullptr);

  // The exact tier answers with bit-identical costs and plans.
  const auto optimal = restored_cache.lookup(fixture.optimal_key);
  ASSERT_TRUE(optimal.has_value());
  EXPECT_EQ(std::bit_cast<std::uint64_t>(optimal->cost),
            std::bit_cast<std::uint64_t>(1.0 / 3.0));
  EXPECT_EQ(optimal->plan.order(),
            (std::vector<model::Service_id>{2, 0, 1, 3, 4, 5}));
  EXPECT_EQ(optimal->termination, opt::Termination::optimal);
  EXPECT_TRUE(optimal->proven_optimal);

  const auto budget = restored_cache.lookup(fixture.budget_key);
  ASSERT_TRUE(budget.has_value());
  EXPECT_EQ(std::bit_cast<std::uint64_t>(budget->cost),
            std::bit_cast<std::uint64_t>(2.718281828459045));
  EXPECT_FALSE(budget->proven_optimal);

  // The cancelled run came back warm-tier-only, as it went in.
  const auto best = restored_cache.best_known(fixture.beta, sequential_key);
  ASSERT_TRUE(best.has_value());
  EXPECT_EQ(std::bit_cast<std::uint64_t>(best->cost),
            std::bit_cast<std::uint64_t>(0.125));
  EXPECT_EQ(best->termination, opt::Termination::cancelled);
}

TEST(Snapshot_test, MissingFileIsAColdBootNotAnError) {
  Instance_store store;
  Plan_cache cache;
  const store::Load_report report = store::load_snapshot(
      temp_path("never_written"), store, cache);
  EXPECT_FALSE(report.file_found);
  EXPECT_FALSE(report.header_ok);
  EXPECT_EQ(report.loaded(), 0u);
  EXPECT_EQ(report.stale_refused, 0u);
}

TEST(Snapshot_test, BumpedFormatVersionRefusesEveryRecord) {
  Fixture fixture;
  const std::string path = temp_path("bumped");
  store::write_snapshot(path, fixture.store, fixture.cache);
  auto lines = read_lines(path);
  // A well-formed, correctly-checksummed header of the *next* format
  // generation: the version check alone must refuse the file.
  lines[0] = reseal_with(lines[0], "format_version",
                         io::Json(store::k_snapshot_format_version + 1));
  write_lines(path, lines);

  Instance_store store;
  Plan_cache cache;
  const store::Load_report report = store::load_snapshot(path, store, cache);
  EXPECT_TRUE(report.file_found);
  EXPECT_FALSE(report.header_ok);
  EXPECT_EQ(report.loaded(), 0u);
  EXPECT_EQ(report.stale_refused, lines.size());
  EXPECT_EQ(store.size(), 0u);
  EXPECT_EQ(cache.size(), 0u);
}

TEST(Snapshot_test, TruncatedRecordIsRefusedAloneWithoutCrashing) {
  Fixture fixture;
  const std::string path = temp_path("truncated");
  store::write_snapshot(path, fixture.store, fixture.cache);
  std::string contents = read_all(path);
  // Chop mid-record: the final line loses its tail (and its newline).
  contents.resize(contents.size() - 15);
  {
    std::ofstream file(path, std::ios::binary | std::ios::trunc);
    file << contents;
  }

  Instance_store store;
  Plan_cache cache;
  const store::Load_report report = store::load_snapshot(path, store, cache);
  EXPECT_TRUE(report.header_ok);
  EXPECT_EQ(report.stale_refused, 1u);
  EXPECT_EQ(report.instances_loaded, 2u);
  EXPECT_EQ(report.exact_loaded, 2u);
  EXPECT_EQ(report.warm_loaded, 2u);  // the chopped record was warm
}

TEST(Snapshot_test, BitFlippedRecordFailsItsChecksum) {
  Fixture fixture;
  const std::string path = temp_path("bitflip");
  store::write_snapshot(path, fixture.store, fixture.cache);
  auto lines = read_lines(path);
  const std::size_t target = line_of_type(lines, "instance");
  // Still valid JSON, one character off: only the checksum catches it.
  const auto at = lines[target].find("\"name\":\"alpha\"");
  ASSERT_NE(at, std::string::npos);
  lines[target][at + 13] = 'b';  // alpha -> alphb
  write_lines(path, lines);

  Instance_store store;
  Plan_cache cache;
  const store::Load_report report = store::load_snapshot(path, store, cache);
  EXPECT_TRUE(report.header_ok);
  EXPECT_EQ(report.stale_refused, 1u);
  EXPECT_EQ(report.instances_loaded, 1u);
  EXPECT_EQ(store.get("alpha"), nullptr);
  ASSERT_NE(store.get("beta"), nullptr);
  // Cache records referencing the refused instance still load: their
  // plans cannot be size-checked, but they are intact and well-keyed.
  EXPECT_EQ(report.exact_loaded, 2u);
}

TEST(Snapshot_test, UnreproducibleModelKeyIsRefusedDespiteValidCrc) {
  Fixture fixture;
  const std::string path = temp_path("modelkey");
  store::write_snapshot(path, fixture.store, fixture.cache);
  auto lines = read_lines(path);
  const std::size_t target = line_of_type(lines, "exact");
  // The forged record checksums perfectly — only the key-reproduction
  // rule (a changed Cost_model::key() schema) can refuse it.
  lines[target] = reseal_with(lines[target], "model_key",
                              io::Json("sequential/independent-v9"));
  write_lines(path, lines);

  Instance_store store;
  Plan_cache cache;
  const store::Load_report report = store::load_snapshot(path, store, cache);
  EXPECT_TRUE(report.header_ok);
  EXPECT_EQ(report.stale_refused, 1u);
  EXPECT_EQ(report.exact_loaded, 1u);
  EXPECT_EQ(report.instances_loaded, 2u);
  EXPECT_EQ(report.warm_loaded, 3u);
}

TEST(Snapshot_test, MismatchedInstanceFingerprintIsRefused) {
  Fixture fixture;
  const std::string path = temp_path("fingerprint");
  store::write_snapshot(path, fixture.store, fixture.cache);
  auto lines = read_lines(path);
  const std::size_t target = line_of_type(lines, "instance");
  lines[target] = reseal_with(lines[target], "fingerprint",
                              io::Json(io::hex64(fixture.alpha ^ 1)));
  write_lines(path, lines);

  Instance_store store;
  Plan_cache cache;
  const store::Load_report report = store::load_snapshot(path, store, cache);
  EXPECT_EQ(report.stale_refused, 1u);
  EXPECT_EQ(report.instances_loaded, 1u);
  EXPECT_EQ(store.get("alpha"), nullptr);
}

TEST(Snapshot_test, CancelledExactRecordIsRefused) {
  Fixture fixture;
  const std::string path = temp_path("cancelled");
  store::write_snapshot(path, fixture.store, fixture.cache);
  auto lines = read_lines(path);
  const std::size_t target = line_of_type(lines, "exact");
  lines[target] =
      reseal_with(lines[target], "termination", io::Json("cancelled"));
  write_lines(path, lines);

  Instance_store store;
  Plan_cache cache;
  const store::Load_report report = store::load_snapshot(path, store, cache);
  EXPECT_EQ(report.stale_refused, 1u);
  EXPECT_EQ(report.exact_loaded, 1u);
  // Cancelled entries remain legal in the warm tier (the fixture's
  // remember_best entry), just never as instant exact answers.
  EXPECT_EQ(report.warm_loaded, 3u);
}

TEST(Snapshot_test, LoadingTwiceIsIdempotent) {
  Fixture fixture;
  const std::string path = temp_path("idempotent");
  store::write_snapshot(path, fixture.store, fixture.cache);

  Instance_store store;
  Plan_cache cache;
  store::load_snapshot(path, store, cache);
  const store::Load_report again = store::load_snapshot(path, store, cache);
  EXPECT_EQ(again.stale_refused, 0u);
  EXPECT_EQ(store.size(), 2u);
  EXPECT_EQ(cache.size(), 2u);
  const auto hit = cache.lookup(fixture.optimal_key);
  ASSERT_TRUE(hit.has_value());
  EXPECT_TRUE(hit->proven_optimal);
}

TEST(Snapshot_test, ModelKeyReproducibility) {
  EXPECT_TRUE(store::model_key_reproducible(sequential_key, 5));
  EXPECT_TRUE(store::model_key_reproducible(correlated_key(6), 6));
  EXPECT_FALSE(store::model_key_reproducible("garbage", 5));
  EXPECT_FALSE(store::model_key_reproducible("", 5));
  EXPECT_FALSE(store::model_key_reproducible(sequential_key, 0));
  EXPECT_FALSE(store::model_key_reproducible("bogus/independent", 5));
  // Explicit-matrix models cannot be restated from their key: refused.
  EXPECT_FALSE(
      store::model_key_reproducible("sequential/matrix=deadbeef", 5));
}

TEST(Snapshot_test, ChecksumIsTheClassicByteWiseFnv1a) {
  EXPECT_EQ(store::snapshot_checksum(""), 0xcbf29ce484222325ull);
  EXPECT_NE(store::snapshot_checksum("a"), store::snapshot_checksum("b"));
  EXPECT_EQ(store::snapshot_checksum("quest"),
            store::snapshot_checksum("quest"));
}

// ---------------------------------------------------------------------
// Byte-mutation fuzzing. The contract under corruption: load_snapshot
// never crashes or throws, and any mutation is either *visible* (header
// rejected or stale_refused bumped) or the load is byte-for-byte the
// pristine snapshot — silently accepting altered content is the one
// forbidden outcome.

/// Writes `bytes` to `path`, loads it, and enforces the fuzz contract.
/// `pristine` is the unmutated snapshot for the silent-acceptance check.
void expect_visible_or_intact(const std::string& path,
                              const std::string& bytes,
                              const std::string& pristine,
                              const std::string& what) {
  {
    std::ofstream file(path, std::ios::binary | std::ios::trunc);
    file << bytes;
  }
  Instance_store store;
  Plan_cache cache;
  store::Load_report report;
  ASSERT_NO_THROW(report = store::load_snapshot(path, store, cache))
      << what;
  ASSERT_TRUE(report.file_found) << what;
  if (!report.header_ok || report.stale_refused > 0) return;  // visible
  // The load claims to be clean: re-serializing what it restored must
  // reproduce the pristine snapshot exactly.
  const std::string reserialized_path = path + ".reserialized";
  store::write_snapshot(reserialized_path, store, cache);
  EXPECT_EQ(read_all(reserialized_path), pristine)
      << what << ": mutated snapshot loaded cleanly but restored "
      << "different content (silent acceptance)";
  std::remove(reserialized_path.c_str());
}

TEST(Snapshot_fuzz, EverySingleByteFlipIsRefusedOrHarmless) {
  Fixture fixture;
  const std::string path = temp_path("byteflip_fuzz");
  store::write_snapshot(path, fixture.store, fixture.cache);
  const std::string pristine = read_all(path);
  ASSERT_FALSE(pristine.empty());

  for (std::size_t at = 0; at < pristine.size(); ++at) {
    for (int bit = 0; bit < 8; ++bit) {
      std::string mutated = pristine;
      mutated[at] = static_cast<char>(
          static_cast<unsigned char>(mutated[at]) ^ (1u << bit));
      expect_visible_or_intact(
          path, mutated, pristine,
          "flip of bit " + std::to_string(bit) + " at byte " +
              std::to_string(at));
      if (::testing::Test::HasFatalFailure()) return;
    }
  }
}

TEST(Snapshot_fuzz, SeededStructuralMutationsNeverCrashTheLoader) {
  Fixture fixture;
  const std::string path = temp_path("structural_fuzz");
  store::write_snapshot(path, fixture.store, fixture.cache);
  const std::string pristine = read_all(path);

  // Deterministic seed so CI replays bit-for-bit; reseed to explore.
  Rng rng(0x5eeded5eededull);
  for (int round = 0; round < 400; ++round) {
    std::string mutated = pristine;
    switch (rng.uniform_int(std::uint64_t{5})) {
      case 0:  // truncate at an arbitrary byte
        mutated.resize(rng.uniform_int(mutated.size() + 1));
        break;
      case 1:  // overwrite a byte with an arbitrary value
        mutated[rng.uniform_int(mutated.size())] =
            static_cast<char>(rng.uniform_int(std::uint64_t{256}));
        break;
      case 2:  // duplicate a byte range
        {
          const std::size_t from = rng.uniform_int(mutated.size());
          const std::size_t len =
              rng.uniform_int(mutated.size() - from) + 1;
          mutated.insert(from, mutated.substr(from, len));
        }
        break;
      case 3:  // delete a byte range
        {
          const std::size_t from = rng.uniform_int(mutated.size());
          const std::size_t len =
              rng.uniform_int(mutated.size() - from) + 1;
          mutated.erase(from, len);
        }
        break;
      default:  // splice the file onto itself at a random cut
        mutated = mutated.substr(rng.uniform_int(mutated.size())) +
                  mutated.substr(0, rng.uniform_int(mutated.size()));
        break;
    }
    expect_visible_or_intact(path, mutated, pristine,
                             "structural mutation round " +
                                 std::to_string(round));
    if (::testing::Test::HasFatalFailure()) return;
  }
}

TEST(Snapshot_fuzz, CheckedInCorpusIsRefusedWithoutCrashing) {
  // Adversarial inputs that once looked plausible to a JSONL loader:
  // every file in the corpus must load without crashing and without
  // restoring a single record (none carries a valid sealed header).
  const std::filesystem::path corpus(QUEST_SNAPSHOT_CORPUS);
  ASSERT_TRUE(std::filesystem::is_directory(corpus));
  std::size_t files = 0;
  for (const auto& entry : std::filesystem::directory_iterator(corpus)) {
    if (!entry.is_regular_file()) continue;
    ++files;
    Instance_store store;
    Plan_cache cache;
    store::Load_report report;
    ASSERT_NO_THROW(
        report = store::load_snapshot(entry.path().string(), store, cache))
        << entry.path();
    EXPECT_TRUE(report.file_found) << entry.path();
    EXPECT_FALSE(report.header_ok) << entry.path();
    EXPECT_EQ(report.loaded(), 0u) << entry.path();
    EXPECT_EQ(store.size(), 0u) << entry.path();
    EXPECT_EQ(cache.size(), 0u) << entry.path();
  }
  EXPECT_GE(files, 8u) << "snapshot fuzz corpus went missing";
}

}  // namespace
}  // namespace quest
