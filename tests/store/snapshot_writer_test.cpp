// Snapshot_writer: version-based dirty tracking (no rewrite of clean
// state, warm-booted state counts as clean), synchronous and periodic
// flushes, the final flush on stop(), durability counters, and write
// failures that are counted rather than thrown.

#include "quest/store/snapshot_writer.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <fstream>
#include <memory>
#include <string>
#include <thread>

#include "quest/store/snapshot.hpp"
#include "support/helpers.hpp"

namespace quest {
namespace {

using store::Snapshot_writer;
using store::Snapshot_writer_options;

std::string temp_path(const std::string& name) {
  const std::string path =
      ::testing::TempDir() + "quest_snapshot_writer_test_" + name + ".qsnap";
  std::remove(path.c_str());  // stale files from earlier runs
  return path;
}

bool file_exists(const std::string& path) {
  return std::ifstream(path).is_open();
}

Snapshot_writer_options slow_options(const std::string& path) {
  Snapshot_writer_options options;
  options.path = path;
  // Effectively never fires on its own: these tests drive flush()/stop()
  // explicitly and must not race the background cadence.
  options.interval = std::chrono::hours(1);
  return options;
}

TEST(Snapshot_writer_test, CleanStateIsNeverRewritten) {
  serve::Instance_store store;
  serve::Plan_cache cache;
  const std::string path = temp_path("clean");
  auto counters = std::make_shared<serve::Durability_counters>();
  Snapshot_writer writer(slow_options(path), store, cache, counters);

  EXPECT_FALSE(writer.flush());
  EXPECT_FALSE(file_exists(path));

  store.put("prod", test::selective_instance(6, 1), std::nullopt);
  EXPECT_TRUE(writer.flush());
  EXPECT_TRUE(file_exists(path));
  EXPECT_EQ(writer.writes(), 1u);
  EXPECT_EQ(counters->snapshot_writes.load(), 1u);
  EXPECT_GT(counters->snapshot_bytes.load(), 0u);

  // Same state again: dirty tracking says no.
  EXPECT_FALSE(writer.flush());
  EXPECT_EQ(writer.writes(), 1u);
  // Unless forced.
  EXPECT_TRUE(writer.flush(/*force=*/true));
  EXPECT_EQ(writer.writes(), 2u);
}

TEST(Snapshot_writer_test, WarmBootedStateCountsAsClean) {
  serve::Instance_store seed_store;
  serve::Plan_cache seed_cache;
  seed_store.put("prod", test::selective_instance(5, 3), std::nullopt);
  const std::string path = temp_path("warmboot");
  store::write_snapshot(path, seed_store, seed_cache);

  serve::Instance_store store;
  serve::Plan_cache cache;
  store::load_snapshot(path, store, cache);
  // The canonical boot sequence: load, then attach the writer. What was
  // just read back must not trigger an immediate rewrite.
  Snapshot_writer writer(slow_options(path), store, cache);
  EXPECT_FALSE(writer.flush());
  EXPECT_EQ(writer.writes(), 0u);
}

TEST(Snapshot_writer_test, PeriodicFlushPicksUpMutations) {
  serve::Instance_store store;
  serve::Plan_cache cache;
  const std::string path = temp_path("periodic");
  Snapshot_writer_options options;
  options.path = path;
  options.interval = std::chrono::milliseconds(10);
  Snapshot_writer writer(options, store, cache);

  store.put("prod", test::selective_instance(6, 2), std::nullopt);
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (writer.writes() == 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_GE(writer.writes(), 1u);

  serve::Instance_store restored;
  serve::Plan_cache restored_cache;
  const store::Load_report report =
      store::load_snapshot(path, restored, restored_cache);
  EXPECT_EQ(report.instances_loaded, 1u);
  EXPECT_NE(restored.get("prod"), nullptr);
}

TEST(Snapshot_writer_test, StopFlushesTheFinalState) {
  serve::Instance_store store;
  serve::Plan_cache cache;
  const std::string path = temp_path("stop");
  Snapshot_writer writer(slow_options(path), store, cache);

  store.put("prod", test::selective_instance(6, 4), std::nullopt);
  writer.stop();
  EXPECT_EQ(writer.writes(), 1u);
  EXPECT_TRUE(file_exists(path));
  writer.stop();  // idempotent
  EXPECT_EQ(writer.writes(), 1u);

  serve::Instance_store restored;
  serve::Plan_cache restored_cache;
  store::load_snapshot(path, restored, restored_cache);
  EXPECT_NE(restored.get("prod"), nullptr);
}

TEST(Snapshot_writer_test, WriteFailuresAreCountedNotThrown) {
  serve::Instance_store store;
  serve::Plan_cache cache;
  Snapshot_writer_options options;
  options.path = "/nonexistent-quest-dir/state.qsnap";
  options.interval = std::chrono::hours(1);
  Snapshot_writer writer(options, store, cache);

  store.put("prod", test::selective_instance(4, 5), std::nullopt);
  EXPECT_FALSE(writer.flush());
  EXPECT_GE(writer.failures(), 1u);
  EXPECT_FALSE(writer.last_error().empty());
  EXPECT_EQ(writer.writes(), 0u);
  // The dirty state stays dirty: a later (still failing) flush retries.
  EXPECT_FALSE(writer.flush());
  EXPECT_GE(writer.failures(), 2u);
}

}  // namespace
}  // namespace quest
