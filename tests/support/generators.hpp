// tests/support/generators.hpp
//
// Domain generators for the property harness (tests/support/property.hpp):
// random instances, plans, and cost-model specs drawn from a quest::Rng,
// plus shrinkers where a simpler case exists. Kept at the model layer so
// any test target can include this without extra link dependencies.

#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "quest/common/rng.hpp"
#include "quest/model/cost_model.hpp"
#include "quest/model/instance.hpp"
#include "quest/model/plan.hpp"
#include "quest/workload/generators.hpp"

namespace quest::test {

/// Uniform random instance with n services, selectivities in
/// [sigma_lo, sigma_hi] (pass sigma_hi > 1 for expanding services).
inline model::Instance gen_instance(Rng& rng, std::size_t n,
                                    double sigma_lo = 0.05,
                                    double sigma_hi = 0.95) {
  workload::Uniform_spec spec;
  spec.n = n;
  spec.selectivity_min = sigma_lo;
  spec.selectivity_max = sigma_hi;
  Rng gen_rng(rng());
  return workload::make_uniform(spec, gen_rng);
}

/// Random complete plan over [0, n).
inline model::Plan gen_plan(Rng& rng, std::size_t n) {
  std::vector<model::Service_id> order;
  order.reserve(n);
  for (const std::size_t id : rng.permutation(n)) {
    order.push_back(static_cast<model::Service_id>(id));
  }
  return model::Plan(std::move(order));
}

/// Random send policy.
inline model::Send_policy gen_policy(Rng& rng) {
  return rng.bernoulli(0.5) ? model::Send_policy::sequential
                            : model::Send_policy::overlapped;
}

/// Random seeded correlated model spec (strength/seed form).
inline model::Cost_model_spec gen_correlated_spec(Rng& rng) {
  model::Cost_model_spec spec;
  spec.policy = gen_policy(rng);
  spec.structure = model::Selectivity_structure::correlated;
  spec.strength = rng.uniform(0.1, 1.0);
  spec.seed = rng();
  return spec;
}

/// Random explicit-matrix correlated model spec for n services: each
/// pairwise factor is lognormal around 1, clamped by the spec's range.
inline model::Cost_model_spec gen_matrix_spec(Rng& rng, std::size_t n,
                                              double log_spread = 0.6) {
  model::Cost_model_spec spec;
  spec.policy = gen_policy(rng);
  spec.structure = model::Selectivity_structure::correlated;
  spec.matrix.reserve(n * (n - 1) / 2);
  for (std::size_t k = 0; k < n * (n - 1) / 2; ++k) {
    double gamma = rng.lognormal(0.0, log_spread);
    gamma = std::clamp(gamma, spec.clamp_lo, spec.clamp_hi);
    spec.matrix.push_back(gamma);
  }
  return spec;
}

/// Shrinks an explicit-matrix spec by pulling factors halfway toward 1
/// (the independent model) — the minimal counterexample shows which
/// interactions actually matter.
inline std::vector<model::Cost_model_spec> shrink_matrix_spec(
    const model::Cost_model_spec& spec) {
  std::vector<model::Cost_model_spec> out;
  bool any = false;
  model::Cost_model_spec half = spec;
  for (double& gamma : half.matrix) {
    if (gamma != 1.0) {
      gamma = 1.0 + 0.5 * (gamma - 1.0);
      any = true;
    }
  }
  if (any) out.push_back(std::move(half));
  for (std::size_t k = 0; k < spec.matrix.size(); ++k) {
    if (spec.matrix[k] == 1.0) continue;
    model::Cost_model_spec one = spec;
    one.matrix[k] = 1.0;
    out.push_back(std::move(one));
  }
  return out;
}

}  // namespace quest::test
