// tests/support/helpers.hpp
//
// Shared helpers for the quest test suite: random-instance shorthands and
// tolerant floating-point comparison of optimizer costs.

#pragma once

#include <gtest/gtest.h>

#include <cmath>

#include "quest/common/rng.hpp"
#include "quest/model/instance.hpp"
#include "quest/workload/generators.hpp"

namespace quest::test {

/// Relative tolerance for comparing two computations of the same cost that
/// may associate floating-point operations differently.
inline constexpr double cost_tolerance = 1e-9;

inline ::testing::AssertionResult costs_equal(double a, double b) {
  const double scale = std::max({std::fabs(a), std::fabs(b), 1.0});
  if (std::fabs(a - b) <= cost_tolerance * scale) {
    return ::testing::AssertionSuccess();
  }
  return ::testing::AssertionFailure()
         << a << " vs " << b << " differ by " << std::fabs(a - b);
}

/// Uniform random instance with selectivities in (0, 1] — the paper's
/// restricted setting.
inline model::Instance selective_instance(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  workload::Uniform_spec spec;
  spec.n = n;
  return workload::make_uniform(spec, rng);
}

/// Instance that mixes filters and expanding services (sigma up to 3).
inline model::Instance expanding_instance(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  workload::Uniform_spec spec;
  spec.n = n;
  spec.selectivity_min = 0.2;
  spec.selectivity_max = 3.0;
  return workload::make_uniform(spec, rng);
}

/// Instance with non-zero result links back to the query originator.
inline model::Instance sink_instance(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  workload::Uniform_spec spec;
  spec.n = n;
  spec.sink_min = 0.1;
  spec.sink_max = 4.0;
  return workload::make_uniform(spec, rng);
}

}  // namespace quest::test
