// tests/support/property.hpp
//
// A small property-based testing harness for the quest suite. A property
// is checked across many generated cases (200 by default), each driven by
// a deterministically derived per-case seed, so CI runs are reproducible
// bit-for-bit while `QUEST_PROPERTY_SEED=<n>` re-points the whole run at
// a fresh region of the case space for exploration.
//
// When a case fails, the harness greedily shrinks it: the caller-supplied
// shrinker proposes simpler candidates, the first candidate that still
// fails becomes the new counterexample, and the loop repeats until no
// candidate fails (a local minimum) or the shrink budget runs out. The
// failure report carries the law's name, the case index, both seeds, and
// the original and shrunk failure messages — everything needed to paste a
// one-line reproduction.
//
// Usage:
//
//   check_property<int>("abs is non-negative", {},
//       [](Rng& rng) { return int(rng.uniform_int(-100, 100)); },
//       [](const int& v) { return shrink_toward(v, 0); },
//       [](const int& v) { return QUEST_PROP(std::abs(v) >= 0)
//                                 << "v = " << v; });
//
// Properties return ::testing::AssertionResult; the QUEST_PROP macro
// builds one from a boolean and lets the property stream the evidence.

#pragma once

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <string>
#include <vector>

#include "quest/common/rng.hpp"

// Builds an AssertionResult from `condition`, pre-seeded with the failed
// expression text; stream the counterexample's data after it.
#define QUEST_PROP(condition)                                      \
  (::quest::test::make_prop_result((condition), #condition))

namespace quest::test {

inline ::testing::AssertionResult make_prop_result(bool ok,
                                                   const char* text) {
  if (ok) return ::testing::AssertionSuccess();
  return ::testing::AssertionFailure() << "violated: " << text << "; ";
}

/// The run seed: fixed default for deterministic CI, overridable through
/// the QUEST_PROPERTY_SEED environment variable (decimal).
inline std::uint64_t property_seed(
    std::uint64_t fallback = 0x9e3779b97f4a7c15ull) {
  if (const char* env = std::getenv("QUEST_PROPERTY_SEED")) {
    char* end = nullptr;
    const unsigned long long parsed = std::strtoull(env, &end, 10);
    if (end != env && *end == '\0') {
      return static_cast<std::uint64_t>(parsed);
    }
    ADD_FAILURE() << "QUEST_PROPERTY_SEED is not a decimal integer: "
                  << env;
  }
  return fallback;
}

struct Property_config {
  /// Generated cases per law. The issue's floor is 200.
  std::size_t cases = 200;
  /// Run seed; per-case seeds are derived from it with splitmix64.
  std::uint64_t seed = property_seed();
  /// Total prop evaluations spent shrinking one counterexample.
  std::size_t max_shrinks = 500;
};

/// Independent per-case seed: one splitmix64 stream position per index.
inline std::uint64_t case_seed(std::uint64_t run_seed, std::size_t index) {
  std::uint64_t state = run_seed + 0x632be59bd9b4e019ull * (index + 1);
  return splitmix64(state);
}

/// No-op shrinker for values with no meaningful simpler form.
template <typename T>
std::vector<T> no_shrink(const T&) {
  return {};
}

/// Candidates for an integral value, bisecting toward `target`.
template <typename Int>
std::vector<Int> shrink_toward(Int value, Int target) {
  std::vector<Int> out;
  if (value == target) return out;
  out.push_back(target);
  Int current = value;
  while (true) {
    const Int mid = current + (target - current) / 2;
    if (mid == current || mid == target) break;
    out.push_back(mid);
    current = mid;
  }
  return out;
}

/// Candidates for a vector: drop halves, then drop single elements.
template <typename T>
std::vector<std::vector<T>> shrink_vector(const std::vector<T>& value) {
  std::vector<std::vector<T>> out;
  const std::size_t n = value.size();
  if (n == 0) return out;
  out.emplace_back();  // the empty vector first — maximal simplification
  if (n >= 2) {
    out.emplace_back(value.begin(), value.begin() + n / 2);
    out.emplace_back(value.begin() + n / 2, value.end());
  }
  for (std::size_t skip = 0; skip < n; ++skip) {
    std::vector<T> shorter;
    shorter.reserve(n - 1);
    for (std::size_t i = 0; i < n; ++i) {
      if (i != skip) shorter.push_back(value[i]);
    }
    out.push_back(std::move(shorter));
  }
  return out;
}

/// Checks `prop` over `config.cases` generated values. `gen` maps an Rng
/// to a value, `shrink` maps a failing value to simpler candidates, and
/// `prop` returns an AssertionResult (use QUEST_PROP). Reports the first
/// counterexample (shrunk as far as the budget allows) and stops.
template <typename T, typename Gen, typename Shrink, typename Prop>
void check_property(const std::string& law, const Property_config& config,
                    Gen&& gen, Shrink&& shrink, Prop&& prop) {
  for (std::size_t index = 0; index < config.cases; ++index) {
    const std::uint64_t seed = case_seed(config.seed, index);
    Rng rng(seed);
    T value = gen(rng);
    ::testing::AssertionResult first = prop(value);
    if (first) continue;

    const std::string original_message = first.message();
    std::string shrunk_message = original_message;
    std::size_t spent = 0;
    bool progressed = true;
    while (progressed && spent < config.max_shrinks) {
      progressed = false;
      for (T& candidate : shrink(value)) {
        if (spent >= config.max_shrinks) break;
        ++spent;
        ::testing::AssertionResult result = prop(candidate);
        if (!result) {
          value = std::move(candidate);
          shrunk_message = result.message();
          progressed = true;
          break;
        }
      }
    }

    ADD_FAILURE() << "property \"" << law << "\" falsified at case "
                  << index << " of " << config.cases << "\n  run seed "
                  << config.seed << " (QUEST_PROPERTY_SEED), case seed "
                  << seed << "\n  original:  " << original_message
                  << "\n  shrunk (" << spent
                  << " evaluations): " << shrunk_message;
    return;
  }
}

/// check_property without a shrinker.
template <typename T, typename Gen, typename Prop>
void check_property(const std::string& law, const Property_config& config,
                    Gen&& gen, Prop&& prop) {
  check_property<T>(law, config, std::forward<Gen>(gen), no_shrink<T>,
                    std::forward<Prop>(prop));
}

}  // namespace quest::test
