// tests/support/synthetic_runs.hpp
//
// Synthetic execution traces for the adaptive-loop tests: propagate tuple
// counts through a plan under a hidden cost model's *exact* conditional
// selectivities and record the per-stage counts into an
// adapt::Observation_log — the analytic stand-in for a virtual-clock
// execution, cheap enough for property tests that replay hundreds of
// cases. With a noise Rng, stage outputs are binomially perturbed (normal
// approximation), modelling the sampling error a real execution's
// per-tuple thinning would carry.

#pragma once

#include <cmath>
#include <cstdint>
#include <vector>

#include "quest/adapt/observation_log.hpp"
#include "quest/common/rng.hpp"
#include "quest/model/cost_model.hpp"
#include "quest/model/instance.hpp"
#include "quest/model/plan.hpp"
#include "support/generators.hpp"

namespace quest::test {

/// One synthetic execution of `plan` on `tuples` input tuples under
/// `truth`, recorded into `log`. Deterministic rounding when `noise` is
/// null; binomial-approximate stage noise otherwise.
inline void synthesize_run(adapt::Observation_log& log,
                           const model::Instance& instance,
                           const model::Cost_model& truth,
                           const model::Plan& plan, std::uint64_t tuples,
                           Rng* noise = nullptr) {
  const std::vector<double> sigma =
      truth.stage_selectivities(instance, plan);
  std::vector<std::uint64_t> in(plan.size(), 0);
  std::vector<std::uint64_t> out(plan.size(), 0);
  std::uint64_t current = tuples;
  for (std::size_t p = 0; p < plan.size(); ++p) {
    in[p] = current;
    const double expected = static_cast<double>(current) * sigma[p];
    double produced = expected;
    if (noise != nullptr && current > 0 && sigma[p] < 1.0) {
      produced += noise->normal() *
                  std::sqrt(expected * std::max(1.0 - sigma[p], 0.0));
    }
    double rounded = std::round(produced);
    if (rounded < 0.0) rounded = 0.0;
    // A filtering stage cannot produce more than it consumed.
    if (sigma[p] <= 1.0 && rounded > static_cast<double>(current)) {
      rounded = static_cast<double>(current);
    }
    out[p] = static_cast<std::uint64_t>(rounded);
    current = out[p];
  }
  log.record_run(plan, in, out);
}

/// Records `runs` random complete plans executed under `truth`.
inline void synthesize_runs(adapt::Observation_log& log,
                            const model::Instance& instance,
                            const model::Cost_model& truth,
                            std::size_t runs, std::uint64_t tuples,
                            Rng& plan_rng, Rng* noise = nullptr) {
  for (std::size_t r = 0; r < runs; ++r) {
    synthesize_run(log, instance, truth,
                   gen_plan(plan_rng, instance.size()), tuples, noise);
  }
}

}  // namespace quest::test
