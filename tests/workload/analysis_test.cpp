#include <gtest/gtest.h>

#include "quest/workload/analysis.hpp"
#include "quest/workload/generators.hpp"
#include "quest/workload/scenarios.hpp"
#include "support/helpers.hpp"

namespace quest {
namespace {

namespace wl = workload;
using wl::Hardness_regime;

TEST(Analysis_test, FlatNetworkHasZeroCv) {
  Rng rng(1);
  wl::Heterogeneity_spec spec;
  spec.n = 6;
  spec.heterogeneity = 0.0;
  const auto profile = wl::analyze(wl::make_heterogeneous(spec, rng));
  EXPECT_DOUBLE_EQ(profile.transfer_cv, 0.0);
  EXPECT_DOUBLE_EQ(profile.transfer_spread, 1.0);
  EXPECT_DOUBLE_EQ(profile.transfer_mean, spec.t_base);
}

TEST(Analysis_test, HeterogeneityRaisesCv) {
  Rng rng(2);
  wl::Heterogeneity_spec flat;
  flat.n = 8;
  flat.heterogeneity = 0.2;
  wl::Heterogeneity_spec wild = flat;
  wild.heterogeneity = 1.0;
  const auto low = wl::analyze(wl::make_heterogeneous(flat, rng));
  const auto high = wl::analyze(wl::make_heterogeneous(wild, rng));
  EXPECT_GT(high.transfer_cv, low.transfer_cv);
  EXPECT_GT(high.transfer_spread, low.transfer_spread);
}

TEST(Analysis_test, RegimeClassification) {
  Rng rng(3);
  wl::Uniform_spec selective;
  selective.n = 8;
  selective.selectivity_min = 0.1;
  selective.selectivity_max = 0.5;
  EXPECT_EQ(wl::analyze(wl::make_uniform(selective, rng)).regime,
            Hardness_regime::selective);

  wl::Uniform_spec near;
  near.n = 8;
  near.selectivity_min = 0.9;
  near.selectivity_max = 1.0;
  EXPECT_EQ(wl::analyze(wl::make_uniform(near, rng)).regime,
            Hardness_regime::near_tsp);

  wl::Uniform_spec expanding;
  expanding.n = 8;
  expanding.selectivity_min = 0.5;
  expanding.selectivity_max = 2.0;
  const auto profile = wl::analyze(wl::make_uniform(expanding, rng));
  EXPECT_EQ(profile.regime, Hardness_regime::expanding);
  EXPECT_GT(profile.expanding_fraction, 0.0);
}

TEST(Analysis_test, GeomeanAndBounds) {
  Matrix<double> t = Matrix<double>::square(3, 0.0);
  for (std::size_t i = 0; i < 3; ++i) {
    for (std::size_t j = 0; j < 3; ++j) {
      if (i != j) t(i, j) = 2.0;
    }
  }
  const model::Instance instance(
      {{1.0, 0.25, "a"}, {2.0, 1.0, "b"}, {3.0, 0.5, "c"}}, std::move(t));
  const auto profile = wl::analyze(instance);
  EXPECT_EQ(profile.services, 3u);
  EXPECT_NEAR(profile.selectivity_geomean, 0.5, 1e-12);  // (0.25*1*0.5)^(1/3)
  EXPECT_DOUBLE_EQ(profile.selectivity_min, 0.25);
  EXPECT_DOUBLE_EQ(profile.selectivity_max, 1.0);
  EXPECT_DOUBLE_EQ(profile.cost_mean, 2.0);
  EXPECT_DOUBLE_EQ(profile.transfer_mean, 2.0);
  // comm share = sigma_bar * t_bar / (c_bar + sigma_bar * t_bar)
  const double sigma_bar = (0.25 + 1.0 + 0.5) / 3.0;
  EXPECT_NEAR(profile.communication_share,
              sigma_bar * 2.0 / (2.0 + sigma_bar * 2.0), 1e-12);
}

TEST(Analysis_test, ZeroSelectivityGeomeanIsZero) {
  const model::Instance instance({{1.0, 0.0, "kill"}, {1.0, 0.5, "pass"}},
                                 Matrix<double>::square(2, 0.0));
  EXPECT_DOUBLE_EQ(wl::analyze(instance).selectivity_geomean, 0.0);
}

TEST(Analysis_test, SingleServiceInstance) {
  const model::Instance instance({{1.0, 0.5, "solo"}},
                                 Matrix<double>::square(1, 0.0));
  const auto profile = wl::analyze(instance);
  EXPECT_EQ(profile.services, 1u);
  EXPECT_DOUBLE_EQ(profile.transfer_cv, 0.0);
  EXPECT_DOUBLE_EQ(profile.transfer_spread, 1.0);
}

TEST(Analysis_test, ScenarioProfilesMakeSense) {
  const auto credit = wl::analyze(wl::credit_screening().instance);
  EXPECT_EQ(credit.regime, Hardness_regime::expanding);
  const auto survey = wl::analyze(wl::sky_survey().instance);
  EXPECT_NE(survey.regime, Hardness_regime::expanding);
  EXPECT_GT(survey.transfer_cv, 0.5);  // two sites, slow cross-link
}

TEST(Analysis_test, RegimeNames) {
  EXPECT_EQ(wl::to_string(Hardness_regime::selective), "selective");
  EXPECT_EQ(wl::to_string(Hardness_regime::near_tsp), "near-tsp");
  EXPECT_EQ(wl::to_string(Hardness_regime::expanding), "expanding");
}

}  // namespace
}  // namespace quest
