#include <gtest/gtest.h>

#include "quest/common/error.hpp"
#include "quest/workload/generators.hpp"

namespace quest {
namespace {

using model::Instance;
using model::Service_id;
namespace wl = workload;

TEST(Generators_test, UniformRespectsRanges) {
  Rng rng(1);
  wl::Uniform_spec spec;
  spec.n = 15;
  spec.cost_min = 1.0;
  spec.cost_max = 2.0;
  spec.selectivity_min = 0.4;
  spec.selectivity_max = 0.6;
  spec.transfer_min = 3.0;
  spec.transfer_max = 4.0;
  const Instance instance = wl::make_uniform(spec, rng);
  ASSERT_EQ(instance.size(), 15u);
  for (Service_id i = 0; i < 15; ++i) {
    EXPECT_GE(instance.cost(i), 1.0);
    EXPECT_LE(instance.cost(i), 2.0);
    EXPECT_GE(instance.selectivity(i), 0.4);
    EXPECT_LE(instance.selectivity(i), 0.6);
    EXPECT_DOUBLE_EQ(instance.sink_transfer(i), 0.0);
    for (Service_id j = 0; j < 15; ++j) {
      if (i == j) {
        EXPECT_DOUBLE_EQ(instance.transfer(i, j), 0.0);
      } else {
        EXPECT_GE(instance.transfer(i, j), 3.0);
        EXPECT_LE(instance.transfer(i, j), 4.0);
      }
    }
  }
  EXPECT_TRUE(instance.all_selective());
}

TEST(Generators_test, UniformDeterministicPerSeed) {
  wl::Uniform_spec spec;
  spec.n = 6;
  Rng a(42);
  Rng b(42);
  EXPECT_TRUE(wl::make_uniform(spec, a) == wl::make_uniform(spec, b));
  Rng c(43);
  EXPECT_FALSE(wl::make_uniform(spec, a) == wl::make_uniform(spec, c));
}

TEST(Generators_test, UniformSymmetricFlag) {
  Rng rng(2);
  wl::Uniform_spec spec;
  spec.n = 8;
  spec.symmetric = true;
  const Instance instance = wl::make_uniform(spec, rng);
  for (Service_id i = 0; i < 8; ++i) {
    for (Service_id j = 0; j < 8; ++j) {
      EXPECT_DOUBLE_EQ(instance.transfer(i, j), instance.transfer(j, i));
    }
  }
}

TEST(Generators_test, UniformSinkRange) {
  Rng rng(3);
  wl::Uniform_spec spec;
  spec.n = 5;
  spec.sink_min = 1.0;
  spec.sink_max = 2.0;
  const Instance instance = wl::make_uniform(spec, rng);
  for (Service_id i = 0; i < 5; ++i) {
    EXPECT_GE(instance.sink_transfer(i), 1.0);
    EXPECT_LE(instance.sink_transfer(i), 2.0);
  }
}

TEST(Generators_test, ClusteredSeparatesIntraAndInter) {
  Rng rng(4);
  wl::Clustered_spec spec;
  spec.n = 12;
  spec.jitter = 0.0;
  const Instance instance = wl::make_clustered(spec, rng);
  // With zero jitter every off-diagonal entry is one of the two base
  // costs.
  int intra = 0;
  int inter = 0;
  for (Service_id i = 0; i < 12; ++i) {
    for (Service_id j = 0; j < 12; ++j) {
      if (i == j) continue;
      const double t = instance.transfer(i, j);
      if (t == spec.intra_transfer) {
        ++intra;
      } else if (t == spec.inter_transfer) {
        ++inter;
      } else {
        FAIL() << "unexpected transfer " << t;
      }
    }
  }
  EXPECT_GT(inter, 0);
}

TEST(Generators_test, EuclideanIsSymmetricAndBounded) {
  Rng rng(5);
  wl::Euclidean_spec spec;
  spec.n = 10;
  spec.noise = 0.0;
  const Instance instance = wl::make_euclidean(spec, rng);
  for (Service_id i = 0; i < 10; ++i) {
    for (Service_id j = 0; j < 10; ++j) {
      EXPECT_DOUBLE_EQ(instance.transfer(i, j), instance.transfer(j, i));
      EXPECT_LE(instance.transfer(i, j), spec.scale + 1e-12);
    }
  }
}

TEST(Generators_test, HeterogeneityKnobEndpoints) {
  Rng rng(6);
  wl::Heterogeneity_spec flat;
  flat.n = 7;
  flat.heterogeneity = 0.0;
  EXPECT_TRUE(wl::make_heterogeneous(flat, rng).uniform_transfer());

  wl::Heterogeneity_spec wild;
  wild.n = 7;
  wild.heterogeneity = 1.0;
  const Instance instance = wl::make_heterogeneous(wild, rng);
  EXPECT_FALSE(instance.uniform_transfer());
  for (Service_id i = 0; i < 7; ++i) {
    for (Service_id j = 0; j < 7; ++j) {
      if (i == j) continue;
      EXPECT_GE(instance.transfer(i, j), wild.transfer_min);
      EXPECT_LE(instance.transfer(i, j), wild.transfer_max);
    }
  }
}

TEST(Generators_test, BottleneckTspShape) {
  Rng rng(7);
  wl::Bottleneck_tsp_spec spec;
  spec.n = 9;
  const Instance instance = wl::make_bottleneck_tsp(spec, rng);
  for (Service_id i = 0; i < 9; ++i) {
    EXPECT_DOUBLE_EQ(instance.cost(i), 0.0);
    EXPECT_DOUBLE_EQ(instance.selectivity(i), 1.0);
    for (Service_id j = 0; j < 9; ++j) {
      EXPECT_DOUBLE_EQ(instance.transfer(i, j), instance.transfer(j, i));
    }
  }
}

TEST(Generators_test, HeavyTailedShapes) {
  for (const auto family :
       {wl::Tail_family::pareto, wl::Tail_family::lognormal}) {
    Rng rng(91);
    wl::Heavy_tail_spec spec;
    spec.n = 64;
    spec.tail = family;
    const auto instance = wl::make_heavy_tailed(spec, rng);
    ASSERT_EQ(instance.size(), 64u);
    double max_cost = 0.0, max_sigma = 0.0;
    for (const auto& service : instance.services()) {
      EXPECT_GT(service.cost, 0.0);
      EXPECT_LE(service.cost, spec.cost_cap);
      EXPECT_GT(service.selectivity, 0.0);
      EXPECT_LE(service.selectivity, spec.selectivity_cap);
      max_cost = std::max(max_cost, service.cost);
      max_sigma = std::max(max_sigma, service.selectivity);
    }
    // Heavy tails: across 64 draws the extremes dwarf the scale.
    EXPECT_GT(max_cost, 4.0 * spec.cost_scale);
    EXPECT_GT(max_sigma, 2.0 * spec.selectivity_scale);
    for (std::size_t i = 0; i < spec.n; ++i) {
      for (std::size_t j = 0; j < spec.n; ++j) {
        if (i == j) continue;
        EXPECT_GE(instance.transfer(i, j), spec.transfer_min);
        EXPECT_LE(instance.transfer(i, j), spec.transfer_max);
      }
    }
  }
}

TEST(Generators_test, HeavyTailedIsDeterministicPerSeed) {
  wl::Heavy_tail_spec spec;
  Rng a(7), b(7), c(8);
  EXPECT_EQ(wl::make_heavy_tailed(spec, a), wl::make_heavy_tailed(spec, b));
  Rng fresh(7);
  EXPECT_FALSE(wl::make_heavy_tailed(spec, fresh) ==
               wl::make_heavy_tailed(spec, c));
}

TEST(Generators_test, HeavyTailSpecValidation) {
  Rng rng(3);
  wl::Heavy_tail_spec bad_alpha;
  bad_alpha.pareto_alpha = 0.0;
  EXPECT_THROW(wl::make_heavy_tailed(bad_alpha, rng), Precondition_error);
  wl::Heavy_tail_spec bad_cap;
  bad_cap.selectivity_scale = 2.0;
  bad_cap.selectivity_cap = 1.0;
  EXPECT_THROW(wl::make_heavy_tailed(bad_cap, rng), Precondition_error);
}

TEST(Generators_test, SpecValidation) {
  Rng rng(8);
  wl::Uniform_spec bad_range;
  bad_range.cost_min = 5.0;
  bad_range.cost_max = 1.0;
  EXPECT_THROW(wl::make_uniform(bad_range, rng), Precondition_error);

  wl::Clustered_spec bad_jitter;
  bad_jitter.jitter = 1.5;
  EXPECT_THROW(wl::make_clustered(bad_jitter, rng), Precondition_error);

  wl::Heterogeneity_spec bad_h;
  bad_h.heterogeneity = 1.5;
  EXPECT_THROW(wl::make_heterogeneous(bad_h, rng), Precondition_error);

  EXPECT_THROW(wl::make_random_dag(4, -0.1, rng), Precondition_error);
}

}  // namespace
}  // namespace quest
