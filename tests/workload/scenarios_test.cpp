#include <gtest/gtest.h>

#include "quest/core/branch_and_bound.hpp"
#include "quest/workload/scenarios.hpp"
#include "support/helpers.hpp"

namespace quest {
namespace {

namespace wl = workload;

void expect_solvable(const wl::Scenario& scenario) {
  core::Bnb_optimizer bnb;
  opt::Request request;
  request.instance = &scenario.instance;
  request.precedence = &scenario.precedence;
  const auto result = bnb.optimize(request);
  EXPECT_TRUE(result.proven_optimal);
  EXPECT_TRUE(result.plan.is_permutation_of(scenario.instance.size()));
  EXPECT_TRUE(scenario.precedence.respects(result.plan.order()));
  EXPECT_TRUE(test::costs_equal(
      result.cost, model::bottleneck_cost(scenario.instance, result.plan)));
}

TEST(Scenarios_test, CreditScreeningShape) {
  const auto scenario = wl::credit_screening();
  EXPECT_EQ(scenario.instance.size(), 6u);
  EXPECT_FALSE(scenario.instance.all_selective());  // card-lookup expands
  EXPECT_TRUE(scenario.precedence.has_edge(0, 5));
  EXPECT_EQ(scenario.instance.service(0).name, "card-lookup");
  EXPECT_FALSE(scenario.description.empty());
  expect_solvable(scenario);
}

TEST(Scenarios_test, SkySurveyShape) {
  const auto scenario = wl::sky_survey();
  EXPECT_EQ(scenario.instance.size(), 7u);
  EXPECT_TRUE(scenario.instance.all_selective());
  // Source extraction precedes every other service.
  for (model::Service_id v = 1; v < 7; ++v) {
    EXPECT_TRUE(scenario.precedence.has_edge(0, v));
  }
  expect_solvable(scenario);
}

TEST(Scenarios_test, LogAnalyticsShape) {
  const auto scenario = wl::log_analytics();
  EXPECT_EQ(scenario.instance.size(), 8u);
  EXPECT_GT(scenario.instance.selectivity(1), 1.0);  // sessionize expands
  expect_solvable(scenario);
}

TEST(Scenarios_test, OptimalBeatsWorstOrderClearly) {
  // The motivating claim of the paper: ordering matters. For each scenario
  // the optimum must be strictly better than the worst feasible plan.
  for (const auto& scenario :
       {wl::credit_screening(), wl::sky_survey(), wl::log_analytics()}) {
    opt::Request request;
    request.instance = &scenario.instance;
    request.precedence = &scenario.precedence;
    core::Bnb_optimizer bnb;
    const double best = bnb.optimize(request).cost;

    // Worst: sample many feasible plans and track the maximum.
    Rng rng(99);
    double worst = best;
    for (int s = 0; s < 2000; ++s) {
      std::vector<model::Service_id> order;
      std::vector<char> placed(scenario.instance.size(), 0);
      while (order.size() < scenario.instance.size()) {
        std::vector<model::Service_id> feasible;
        for (model::Service_id u = 0; u < scenario.instance.size(); ++u) {
          if (!placed[u] && scenario.precedence.feasible_next(u, placed)) {
            feasible.push_back(u);
          }
        }
        const auto pick = feasible[rng.uniform_int(
            static_cast<std::uint64_t>(feasible.size()))];
        order.push_back(pick);
        placed[pick] = 1;
      }
      worst = std::max(worst, model::bottleneck_cost(
                                  scenario.instance, model::Plan(order)));
    }
    EXPECT_GT(worst, best * 1.2)
        << scenario.instance.name()
        << ": ordering should matter by a clear margin";
  }
}

}  // namespace
}  // namespace quest
