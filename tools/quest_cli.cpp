// quest_cli — the unified end-to-end driver: load an instance JSON (or
// generate one), run any registered optimizer spec under a budget, print
// or JSON-dump the result, optionally explain the plan and validate it on
// the discrete-event simulator and the virtual-clock executor.
//
//   quest_cli --list
//   quest_cli --generate clustered --n 12 --save instance.json
//   quest_cli --instance instance.json --optimizer bnb --deadline-ms 500
//   quest_cli --optimizer "annealing:iterations=50000" --seed 7 --stream
//   quest_cli --generate credit --optimizer portfolio --simulate --json
//
// Exit codes: 0 = ran to the reported termination; 1 = quest error
// (unknown engine, malformed instance, ...); 2 = bad command line.

#include <iostream>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "quest/adapt/model_fitter.hpp"
#include "quest/adapt/observation_log.hpp"
#include "quest/common/cli.hpp"
#include "quest/common/rng.hpp"
#include "quest/common/table.hpp"
#include "quest/common/timer.hpp"
#include "quest/core/engines.hpp"
#include "quest/io/instance_io.hpp"
#include "quest/model/explain.hpp"
#include "quest/runtime/choreography.hpp"
#include "quest/sim/simulator.hpp"
#include "quest/workload/generators.hpp"
#include "quest/workload/scenarios.hpp"

namespace {

using namespace quest;

struct Problem {
  model::Instance instance;
  std::optional<constraints::Precedence_graph> precedence;
};

Problem load_or_generate(const std::string& path, const std::string& family,
                         std::size_t n, std::uint64_t gen_seed) {
  if (!path.empty()) {
    auto document = io::load_instance(path);
    return {std::move(document.instance), std::move(document.precedence)};
  }
  if (family == "credit" || family == "sky" || family == "log") {
    workload::Scenario scenario = family == "credit"
                                      ? workload::credit_screening()
                                  : family == "sky" ? workload::sky_survey()
                                                    : workload::log_analytics();
    return {std::move(scenario.instance), std::move(scenario.precedence)};
  }
  Rng rng(gen_seed);
  if (family == "uniform") {
    workload::Uniform_spec spec;
    spec.n = n;
    return {workload::make_uniform(spec, rng), std::nullopt};
  }
  if (family == "clustered") {
    workload::Clustered_spec spec;
    spec.n = n;
    return {workload::make_clustered(spec, rng), std::nullopt};
  }
  if (family == "euclidean") {
    workload::Euclidean_spec spec;
    spec.n = n;
    return {workload::make_euclidean(spec, rng), std::nullopt};
  }
  if (family == "btsp") {
    workload::Bottleneck_tsp_spec spec;
    spec.n = n;
    return {workload::make_bottleneck_tsp(spec, rng), std::nullopt};
  }
  if (family == "heavy" || family == "heavy-lognormal") {
    workload::Heavy_tail_spec spec;
    spec.n = n;
    if (family == "heavy-lognormal") {
      spec.tail = workload::Tail_family::lognormal;
    }
    return {workload::make_heavy_tailed(spec, rng), std::nullopt};
  }
  throw Parse_error("unknown --generate family '" + family +
                    "' (uniform, clustered, euclidean, btsp, heavy, "
                    "heavy-lognormal, credit, sky, log)");
}

io::Json stats_json(const opt::Search_stats& stats) {
  io::Json json;
  json.set("nodes_expanded",
           io::Json(static_cast<double>(stats.nodes_expanded)));
  json.set("complete_plans",
           io::Json(static_cast<double>(stats.complete_plans)));
  json.set("incumbent_updates",
           io::Json(static_cast<double>(stats.incumbent_updates)));
  json.set("total_prunes",
           io::Json(static_cast<double>(stats.total_prunes())));
  // Only parallel engines set this; omitting the zero keeps sequential
  // output stable for byte-level comparisons.
  if (stats.engine_threads != 0) {
    json.set("engine_threads",
             io::Json(static_cast<double>(stats.engine_threads)));
  }
  return json;
}

/// The offline adaptive round trip (--adapt): treat the --model spec as
/// the *hidden truth*, execute random plans on the virtual-clock
/// executor under it, fit a model from the observed per-stage tuple
/// counts, re-optimize under the fitted model, and report the fitted
/// plan's true cost against the oracle (optimized under the hidden
/// model) and the naive baseline (optimized under independent).
struct Adapt_outcome {
  adapt::Fit_report report;
  std::string fitted_spec_text;
  std::string fitted_key;
  std::uint64_t runs = 0;
  double naive_true_cost = 0.0;
  double fitted_true_cost = 0.0;
  double oracle_true_cost = 0.0;
  model::Plan fitted_plan;
};

Adapt_outcome run_adapt(const model::Instance& instance,
                        const std::string& spec_text,
                        const model::Cost_model& hidden,
                        model::Objective objective, std::size_t rounds,
                        std::uint64_t input_tuples, std::uint64_t seed) {
  const std::size_t n = instance.size();
  adapt::Observation_log log(n);
  Rng rng(seed ^ 0x5eedade5ull);
  runtime::Runtime_config exec_config;
  exec_config.input_tuples = input_tuples;
  exec_config.clock_mode = runtime::Clock_mode::virtual_time;
  exec_config.model = hidden;
  for (std::size_t round = 0; round < rounds; ++round) {
    std::vector<model::Service_id> order;
    order.reserve(n);
    for (const std::size_t id : rng.permutation(n)) {
      order.push_back(static_cast<model::Service_id>(id));
    }
    const model::Plan plan(std::move(order));
    const runtime::Runtime_result run =
        runtime::execute(instance, plan, exec_config);
    log.record_run(plan, run.tuples_in, run.tuples_out);
    for (std::size_t p = 0; p < n; ++p) {
      // The executor charges exactly the mean per-tuple cost, so the
      // observed moments are the deterministic ones.
      const double cost = instance.service(plan[p]).cost;
      log.record_cost(plan[p], run.tuples_in[p],
                      static_cast<double>(run.tuples_in[p]) * cost,
                      static_cast<double>(run.tuples_in[p]) * cost * cost);
    }
  }

  const adapt::Model_fitter fitter;
  Adapt_outcome outcome;
  outcome.report = fitter.fit(log);
  outcome.runs = log.runs();
  const model::Cost_model_spec fitted_spec =
      fitter.to_spec(outcome.report, hidden.policy(), objective);
  outcome.fitted_spec_text = fitted_spec.to_string();
  const model::Cost_model fitted = fitted_spec.bind(n);
  outcome.fitted_key = fitted.key();

  const auto optimize_under = [&](const model::Cost_model& model) {
    opt::Request request;
    request.instance = &instance;
    request.model = model;
    request.seed = seed;
    return core::make_optimizer(spec_text)->optimize(request);
  };
  const opt::Result naive =
      optimize_under(model::Cost_model::independent(hidden.policy()));
  const opt::Result fitted_run = optimize_under(fitted);
  const opt::Result oracle = optimize_under(hidden);
  outcome.naive_true_cost =
      model::bottleneck_cost(instance, naive.plan, hidden);
  outcome.fitted_true_cost =
      model::bottleneck_cost(instance, fitted_run.plan, hidden);
  outcome.oracle_true_cost =
      model::bottleneck_cost(instance, oracle.plan, hidden);
  outcome.fitted_plan = fitted_run.plan;
  return outcome;
}

int run(int argc, char** argv) {
  Cli cli("quest_cli",
          "load/generate an instance, optimize under a budget, explain, "
          "simulate, execute");
  auto& instance_path =
      cli.add_string("instance", "", "instance JSON to load");
  auto& family = cli.add_string(
      "generate", "uniform",
      "family when no --instance: uniform|clustered|euclidean|btsp|heavy|"
      "heavy-lognormal|credit|sky|log");
  auto& n = cli.add_int("n", 12, "generated instance size");
  auto& gen_seed = cli.add_int("gen-seed", 1, "generator seed");
  auto& save_path =
      cli.add_string("save", "", "write the instance JSON here");
  auto& spec = cli.add_string(
      "optimizer", "portfolio",
      "registered spec, e.g. 'bnb' or 'annealing:iterations=50000'");
  auto& list = cli.add_bool("list", false, "list registered engines, exit");
  auto& list_names =
      cli.add_bool("list-names", false, "bare engine names, one per line");
  auto& deadline_ms =
      cli.add_double("deadline-ms", 0.0, "wall-clock budget (0 = none)");
  auto& node_limit =
      cli.add_int("node-limit", 0, "work-unit budget (0 = none)");
  auto& cost_target = cli.add_double(
      "cost-target", 0.0, "stop once an incumbent costs at most this");
  auto& seed =
      cli.add_int("seed", 0, "top-level seed for stochastic engines");
  auto& policy_name =
      cli.add_string("policy", "sequential",
                     "send policy: sequential|overlapped");
  auto& model_name = cli.add_string(
      "model", "independent",
      "cost model: independent | "
      "correlated[:strength=...,seed=...,clamp-lo=...,clamp-hi=...]");
  auto& stream =
      cli.add_bool("stream", false, "print each improving incumbent");
  auto& explain = cli.add_bool("explain", false, "per-stage plan breakdown");
  auto& simulate =
      cli.add_bool("simulate", false, "discrete-event simulation of the plan");
  auto& execute = cli.add_bool(
      "execute", false, "run the plan on the virtual-clock executor");
  auto& tuples =
      cli.add_int("tuples", 10'000, "input tuples for simulate/execute");
  auto& block_size =
      cli.add_int("block-size", 32, "tuples per transfer block");
  auto& workers =
      cli.add_int("workers", 4, "executor worker pool size");
  auto& json_output =
      cli.add_bool("json", false, "machine-readable JSON on stdout");
  auto& adapt_mode = cli.add_bool(
      "adapt", false,
      "offline observe->fit->re-optimize round trip: --model is the "
      "hidden truth; executes random plans on the virtual clock, fits a "
      "model from the observations, re-optimizes under it");
  auto& adapt_rounds =
      cli.add_int("adapt-rounds", 24, "plans executed per --adapt run");
  cli.parse(argc, argv);

  if (list.value) {
    std::cout << "registered optimizers:\n"
              << core::engine_registry().describe();
    return 0;
  }
  if (list_names.value) {
    for (const auto& name : core::engine_registry().names()) {
      std::cout << name << '\n';
    }
    return 0;
  }

  // Parse_error, not Precondition_error: these are bad command lines
  // (exit 2), not library misuse.
  if (deadline_ms.value < 0.0) {
    throw Parse_error("--deadline-ms must be non-negative");
  }
  if (node_limit.value < 0) {
    throw Parse_error("--node-limit must be non-negative");
  }
  if (seed.value < 0) throw Parse_error("--seed must be non-negative");
  if (cost_target.value < 0.0) {
    throw Parse_error("--cost-target must be non-negative");
  }

  const model::Cost_model_spec model_spec =
      model::parse_cost_model_spec(model_name.value, policy_name.value);

  Problem problem =
      load_or_generate(instance_path.value, family.value,
                       static_cast<std::size_t>(n.value),
                       static_cast<std::uint64_t>(gen_seed.value));
  const model::Instance& instance = problem.instance;
  const constraints::Precedence_graph* precedence =
      problem.precedence ? &*problem.precedence : nullptr;
  if (!save_path.value.empty()) {
    io::save_instance(save_path.value, instance, precedence);
  }

  auto optimizer = core::make_optimizer(spec.value);

  // The effective cost model: --model/--policy, overridden by any shared
  // model keys inside the --optimizer spec (which the built engine also
  // applies) — what explain/simulate must evaluate under too.
  const model::Cost_model cost_model = opt::spec_model_override(
      spec.value, model_spec.bind(instance.size()), instance.size());

  if (adapt_mode.value) {
    if (precedence != nullptr && !precedence->unconstrained()) {
      throw Parse_error("--adapt requires an unconstrained instance "
                        "(random observation plans must be feasible)");
    }
    if (adapt_rounds.value < 1) {
      throw Parse_error("--adapt-rounds must be positive");
    }
    const Adapt_outcome outcome = run_adapt(
        instance, spec.value, cost_model, model_spec.objective,
        static_cast<std::size_t>(adapt_rounds.value),
        static_cast<std::uint64_t>(tuples.value),
        static_cast<std::uint64_t>(seed.value));
    const double gap =
        outcome.oracle_true_cost > 0.0
            ? (outcome.fitted_true_cost - outcome.oracle_true_cost) /
                  outcome.oracle_true_cost
            : 0.0;
    if (json_output.value) {
      io::Json doc;
      doc.set("hidden_model", io::Json(cost_model.key()));
      doc.set("runs", io::Json(static_cast<double>(outcome.runs)));
      doc.set("fitted_model", io::Json(outcome.fitted_spec_text));
      doc.set("fitted_key", io::Json(outcome.fitted_key));
      doc.set("falsified",
              io::Json(outcome.report.independent_falsified));
      doc.set("max_abs_log_gamma",
              io::Json(outcome.report.max_abs_log_gamma));
      doc.set("naive_true_cost", io::Json(outcome.naive_true_cost));
      doc.set("fitted_true_cost", io::Json(outcome.fitted_true_cost));
      doc.set("oracle_true_cost", io::Json(outcome.oracle_true_cost));
      doc.set("fitted_plan", io::to_json(outcome.fitted_plan));
      doc.set("gap", io::Json(gap));
      std::cout << doc.dump(2) << '\n';
      return 0;
    }
    std::cout << "adapt: hidden model " << cost_model.key() << '\n'
              << "observe: " << outcome.runs
              << " random plans on the virtual clock\n"
              << "fit: falsified="
              << (outcome.report.independent_falsified ? "yes" : "no")
              << " max|log gamma|="
              << Table::num(outcome.report.max_abs_log_gamma, 4) << '\n'
              << "fitted model: " << outcome.fitted_spec_text << '\n'
              << "replan (true costs under the hidden model):\n"
              << "  naive (independent): "
              << Table::num(outcome.naive_true_cost, 6) << '\n'
              << "  fitted:              "
              << Table::num(outcome.fitted_true_cost, 6) << '\n'
              << "  oracle:              "
              << Table::num(outcome.oracle_true_cost, 6) << " (gap "
              << Table::num(gap * 100.0, 2) << "%)\n";
    return 0;
  }

  opt::Request request;
  request.instance = &instance;
  request.precedence = precedence;
  request.model = cost_model;
  request.budget.time_limit_seconds = deadline_ms.value / 1e3;
  request.budget.node_limit = static_cast<std::uint64_t>(node_limit.value);
  request.budget.cost_target = cost_target.value;
  request.seed = static_cast<std::uint64_t>(seed.value);

  struct Incumbent_record {
    double cost;
    double elapsed_seconds;
  };
  std::vector<Incumbent_record> incumbents;
  Timer timer;
  request.on_incumbent = [&](const model::Plan& plan, double cost,
                             const opt::Search_stats&) {
    incumbents.push_back({cost, timer.seconds()});
    if (stream.value) {
      // In --json mode the stream goes to stderr so stdout stays one
      // valid JSON document.
      auto& out = json_output.value ? std::cerr : std::cout;
      out << "incumbent " << incumbents.size() << ": cost "
          << Table::num(cost, 6) << " at " << Table::num(timer.millis(), 2)
          << " ms, plan " << plan.to_string() << '\n';
    }
  };

  const opt::Result result = optimizer->optimize(request);
  const bool complete = result.plan.size() == instance.size();

  std::optional<sim::Sim_result> simulated;
  if (simulate.value && complete) {
    sim::Sim_config config;
    config.input_tuples = static_cast<std::uint64_t>(tuples.value);
    config.block_size = static_cast<std::uint64_t>(block_size.value);
    config.model = cost_model;
    simulated = sim::simulate(instance, result.plan, config);
  }

  std::optional<runtime::Runtime_result> executed;
  if (execute.value && complete) {
    runtime::Runtime_config config;
    config.input_tuples = static_cast<std::uint64_t>(tuples.value);
    config.block_size = static_cast<std::uint64_t>(block_size.value);
    config.worker_count = static_cast<std::size_t>(workers.value);
    config.clock_mode = runtime::Clock_mode::virtual_time;
    config.model = cost_model;
    executed = runtime::execute(instance, result.plan, config);
  }

  if (json_output.value) {
    io::Json doc;
    io::Json instance_json;
    instance_json.set("name", io::Json(instance.name()));
    instance_json.set("services",
                      io::Json(static_cast<double>(instance.size())));
    instance_json.set("constrained",
                      io::Json(precedence != nullptr &&
                               !precedence->unconstrained()));
    doc.set("instance", std::move(instance_json));
    doc.set("optimizer", io::Json(spec.value));
    doc.set("engine", io::Json(optimizer->name()));
    doc.set("cost_model", io::Json(cost_model.key()));

    io::Json result_json;
    result_json.set("cost", complete ? io::Json(result.cost) : io::Json());
    result_json.set("termination", io::Json(to_string(result.termination)));
    result_json.set("proven_optimal", io::Json(result.proven_optimal));
    result_json.set("complete", io::Json(complete));
    result_json.set("elapsed_seconds", io::Json(result.elapsed_seconds));
    result_json.set("plan", io::to_json(result.plan));
    result_json.set("stats", stats_json(result.stats));
    doc.set("result", std::move(result_json));

    io::Json incumbents_json{io::Json::Array{}};
    for (const auto& record : incumbents) {
      io::Json entry;
      entry.set("cost", io::Json(record.cost));
      entry.set("elapsed_seconds", io::Json(record.elapsed_seconds));
      incumbents_json.push_back(std::move(entry));
    }
    doc.set("incumbents", std::move(incumbents_json));

    if (simulated) {
      io::Json sim_json;
      sim_json.set("makespan", io::Json(simulated->makespan));
      sim_json.set("per_tuple_time", io::Json(simulated->per_tuple_time));
      sim_json.set("predicted_cost", io::Json(simulated->predicted_cost));
      sim_json.set("tuples_delivered",
                   io::Json(static_cast<double>(simulated->tuples_delivered)));
      doc.set("simulation", std::move(sim_json));
    }
    if (executed) {
      io::Json exec_json;
      exec_json.set("per_tuple_cost_units",
                    io::Json(executed->per_tuple_cost_units));
      exec_json.set("predicted_cost", io::Json(executed->predicted_cost));
      exec_json.set("tuples_delivered",
                    io::Json(static_cast<double>(executed->tuples_delivered)));
      doc.set("execution", std::move(exec_json));
    }
    std::cout << doc.dump(2) << '\n';
    return 0;
  }

  std::cout << "instance: " << instance.name() << " (" << instance.size()
            << " services"
            << (precedence != nullptr && !precedence->unconstrained()
                    ? ", constrained"
                    : "")
            << ")\n"
            << "optimizer: " << spec.value << " -> engine "
            << optimizer->name() << '\n'
            << "cost model: " << cost_model.key() << '\n';
  if (complete) {
    std::cout << "plan: " << result.plan.to_string() << '\n'
              << "cost: " << Table::num(result.cost, 6) << '\n';
  } else {
    std::cout << "plan: <incomplete — budget expired before the first "
                 "complete plan>\n";
  }
  std::cout << "termination: " << to_string(result.termination)
            << (result.proven_optimal ? " (proven optimal)" : "") << '\n'
            << "work: " << result.stats.nodes_expanded << " nodes, "
            << result.stats.complete_plans << " plans, "
            << result.stats.incumbent_updates << " incumbent updates in "
            << Table::num(result.elapsed_seconds * 1e3, 2) << " ms\n";
  if (explain.value && complete) {
    std::cout << '\n'
              << model::explain_plan(instance, result.plan, cost_model);
  }
  if (simulated) {
    std::cout << "\nsimulation: makespan "
              << Table::num(simulated->makespan, 2) << ", per-tuple "
              << Table::num(simulated->per_tuple_time, 6) << " vs predicted "
              << Table::num(simulated->predicted_cost, 6) << ", delivered "
              << simulated->tuples_delivered << " tuples\n";
  }
  if (executed) {
    std::cout << "\nexecution (virtual clock, " << workers.value
              << " workers): per-tuple "
              << Table::num(executed->per_tuple_cost_units, 6)
              << " cost units vs predicted "
              << Table::num(executed->predicted_cost, 6) << ", delivered "
              << executed->tuples_delivered << " tuples\n";
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const quest::Parse_error& error) {
    std::cerr << "quest_cli: " << error.what() << '\n';
    return 2;
  } catch (const quest::Error& error) {
    std::cerr << "quest_cli: " << error.what() << '\n';
    return 1;
  }
}
