// quest_router — the fingerprint-sharding front of a quest_serve fleet.
// Speaks the ordinary quest_serve wire protocol on its TCP port and
// forwards each op to the backend that owns the instance it concerns,
// where ownership is consistent hashing of the instance's content
// fingerprint (quest/store/shard_map.hpp). Backends key their plan
// caches — and their --snapshot-path persistence — by the same
// fingerprint, so routing by it keeps every instance's warm and durable
// state on one backend.
//
//   quest_serve  --tcp-port 7401 --snapshot-path shard0.qsnap &
//   quest_serve  --tcp-port 7402 --snapshot-path shard1.qsnap &
//   quest_router --tcp-port 7400 --backends 127.0.0.1:7401,127.0.0.1:7402
//
// Clients connect to the router exactly as they would to a single
// quest_serve: register / optimize / optimize_batch / cancel flow to the
// owning shard, stats fans out and comes back as one merged event (with
// "shards" / "shards_live"), shutdown takes the whole fleet down.
//
// With the default --replicas 1 each key lives on exactly one shard: a
// dead backend sheds its ops with the protocol's typed "overloaded"
// error and is reconnected lazily once it returns — byte-identical to
// the router's pre-replication behavior. With --replicas R > 1 the
// cluster layer takes over (quest/cluster/replica_router.hpp): every key
// lives on R distinct shards, registers fan out, optimizes fail over to
// the next live replica on backend death or shed, a health prober tracks
// the fleet, and a registration journal (--journal) heals rejoining
// backends by replay. The merged stats event then additionally carries
// "replicas" / "shards_degraded" / "replica_failovers" / "repairs" /
// "replica_lag".
//
// The first stdout line is {"event":"listening","port":N} (N is the
// bound port — useful with --tcp-port 0).

#include <algorithm>
#include <chrono>
#include <iostream>
#include <string>
#include <vector>

#include "quest/cluster/replica_router.hpp"
#include "quest/common/cli.hpp"
#include "quest/io/json.hpp"
#include "quest/serve/tcp_transport.hpp"
#include "quest/store/router.hpp"

int main(int argc, char** argv) {
  using namespace quest;
  try {
    Cli cli("quest_router",
            "consistent-hash shard router in front of quest_serve backends");
    auto& backends = cli.add_string(
        "backends", "",
        "comma-separated backend host:port list, one per shard (required)");
    auto& tcp_port = cli.add_int(
        "tcp-port", 0,
        "listen port (0 = ephemeral; the bound port is announced as a "
        "\"listening\" event)");
    auto& bind_address =
        cli.add_string("bind", "127.0.0.1", "TCP listen address");
    auto& replicas = cli.add_int(
        "replicas", 1,
        "replication factor: each key lives on this many distinct shards; "
        "1 = plain sharding (one owner per key), >1 enables fan-out, "
        "failover and journal-backed repair");
    auto& ring_points = cli.add_int(
        "ring-points", 64,
        "consistent-hash ring points per shard; more points = smoother "
        "load split, identical values on every router = identical routing");
    auto& journal_path = cli.add_string(
        "journal", "",
        "registration journal file for replica repair (only with "
        "--replicas > 1; empty = in-memory only)");
    auto& probe_interval_ms = cli.add_int(
        "probe-interval-ms", 500,
        "backend health probe cadence in milliseconds (only with "
        "--replicas > 1; dead shards back off exponentially from here)");
    auto& max_connections = cli.add_int(
        "max-connections", 1024,
        "client connection limit; excess connects are refused with a "
        "typed \"overloaded\" error");
    auto& max_line_bytes = cli.add_int(
        "max-line-bytes", 1 << 20,
        "longest accepted request line; longer lines get a typed "
        "\"line-overflow\" error");
    auto& write_buffer_bytes = cli.add_int(
        "write-buffer-bytes", 1 << 20,
        "per-client outbound buffer cap; a connection above it stops "
        "being read until the client drains (backpressure)");
    cli.parse(argc, argv);

    std::vector<std::string> backend_list;
    std::string rest = backends.value;
    while (!rest.empty()) {
      const auto comma = rest.find(',');
      const std::string entry = rest.substr(0, comma);
      if (!entry.empty()) backend_list.push_back(entry);
      if (comma == std::string::npos) break;
      rest.erase(0, comma + 1);
    }
    if (backend_list.empty()) {
      throw Parse_error("--backends needs at least one host:port");
    }
    for (const std::string& entry : backend_list) {
      const auto colon = entry.rfind(':');
      if (colon == std::string::npos || colon == 0 ||
          colon + 1 == entry.size()) {
        throw Parse_error("--backends entry \"" + entry +
                          "\" is not host:port");
      }
    }
    if (tcp_port.value < 0 || tcp_port.value > 65535) {
      throw Parse_error("--tcp-port must be in [0, 65535]");
    }
    if (replicas.value < 1 ||
        static_cast<std::size_t>(replicas.value) > backend_list.size()) {
      throw Parse_error("--replicas must be in [1, number of backends]");
    }
    if (ring_points.value < 1) {
      throw Parse_error("--ring-points must be >= 1");
    }
    if (probe_interval_ms.value < 1) {
      throw Parse_error("--probe-interval-ms must be >= 1");
    }
    if (max_connections.value < 1) {
      throw Parse_error("--max-connections must be >= 1");
    }
    if (max_line_bytes.value < 2) {
      throw Parse_error("--max-line-bytes must be >= 2");
    }
    if (write_buffer_bytes.value < 1024) {
      throw Parse_error("--write-buffer-bytes must be >= 1024");
    }

    serve::Tcp_options tcp_options;
    tcp_options.bind_address = bind_address.value;
    tcp_options.port = static_cast<std::uint16_t>(tcp_port.value);
    tcp_options.max_connections =
        static_cast<std::size_t>(max_connections.value);
    tcp_options.write_buffer_cap =
        static_cast<std::size_t>(write_buffer_bytes.value);
    serve::Tcp_transport transport(tcp_options);
    io::Json listening;
    listening.set("event", io::Json("listening"));
    listening.set("port", io::Json(transport.port()));
    std::cout << listening.dump() << std::endl;

    if (replicas.value == 1) {
      // Plain sharding: the pre-replication router, byte-for-byte.
      store::Router_options options;
      options.backends = std::move(backend_list);
      options.ring_points = static_cast<std::size_t>(ring_points.value);
      options.max_line_bytes = static_cast<std::size_t>(max_line_bytes.value);
      store::Router router(std::move(options), transport);
      router.serve();
      return 0;
    }

    cluster::Replica_options options;
    options.backends = std::move(backend_list);
    options.replicas = static_cast<std::size_t>(replicas.value);
    options.ring_points = static_cast<std::size_t>(ring_points.value);
    options.max_line_bytes = static_cast<std::size_t>(max_line_bytes.value);
    options.journal.path = journal_path.value;
    options.probe_interval =
        std::chrono::milliseconds(probe_interval_ms.value);
    options.max_backoff = std::chrono::milliseconds(
        std::max(probe_interval_ms.value * 16, probe_interval_ms.value));
    cluster::Replica_router router(std::move(options), transport);
    router.serve();
    return 0;
  } catch (const quest::Parse_error& error) {
    std::cerr << "quest_router: " << error.what() << '\n';
    return 2;
  } catch (const quest::Error& error) {
    std::cerr << "quest_router: " << error.what() << '\n';
    return 1;
  }
}
