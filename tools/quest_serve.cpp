// quest_serve — the long-lived optimization service: a line-delimited
// JSON protocol on stdin/stdout over a fixed worker pool, with shared
// instance registration, per-request budgets, mid-flight cancellation,
// streamed incumbents, and a cross-request plan cache.
//
//   quest_serve --workers 8
//   echo '{"op":"stats"}' | quest_serve
//
// A session (one op per line on stdin, one event per line on stdout):
//
//   {"op":"register","name":"prod","instance":{...}}
//   {"op":"optimize","id":"r1","instance":"prod","optimizer":"bnb",
//    "budget":{"deadline_ms":500},"stream":true}
//   {"op":"cancel","id":"r1"}
//   {"op":"stats"}
//   {"op":"shutdown"}
//
// The process exits 0 after a shutdown op — or on EOF, which cancels
// anything still in flight (every admitted request still receives its
// result event) and shuts down cleanly. Protocol errors never kill the
// session; they come back as {"event":"error",...} lines.

#include <iostream>
#include <string>

#include "quest/common/cli.hpp"
#include "quest/serve/server.hpp"

int main(int argc, char** argv) {
  using namespace quest;
  try {
    Cli cli("quest_serve",
            "serve concurrent optimize requests over line-delimited JSON "
            "(stdin -> stdout)");
    auto& workers =
        cli.add_int("workers", 4, "worker threads draining the queue");
    auto& cache_capacity =
        cli.add_int("cache-capacity", 256, "plan cache entries");
    auto& no_cache =
        cli.add_bool("no-cache", false, "disable the plan cache entirely");
    auto& engine_threads = cli.add_int(
        "engine-threads", 0,
        "per-job thread cap for parallel engines (0 = hardware / workers)");
    cli.parse(argc, argv);
    if (workers.value < 1) throw Parse_error("--workers must be >= 1");
    if (cache_capacity.value < 1) {
      throw Parse_error("--cache-capacity must be >= 1");
    }
    if (engine_threads.value < 0) {
      throw Parse_error("--engine-threads must be >= 0");
    }

    serve::Server_options options;
    options.workers = static_cast<std::size_t>(workers.value);
    options.cache_capacity = static_cast<std::size_t>(cache_capacity.value);
    options.enable_cache = !no_cache.value;
    options.engine_threads = static_cast<std::size_t>(engine_threads.value);

    // One event per line, flushed immediately: clients read the stream
    // interactively, so buffering would deadlock a request/response loop.
    serve::Server server(options, [](const io::Json& event) {
      std::cout << event.dump() << std::endl;
    });

    std::string line;
    while (std::getline(std::cin, line)) {
      if (!server.handle_line(line)) break;  // shutdown op processed
    }
    // EOF without a shutdown op: cancel in-flight work and drain. The
    // destructor would do this too; doing it explicitly makes "clean exit
    // after EOF" the documented behavior rather than a side effect.
    server.shutdown();
    return 0;
  } catch (const quest::Parse_error& error) {
    std::cerr << "quest_serve: " << error.what() << '\n';
    return 2;
  } catch (const quest::Error& error) {
    std::cerr << "quest_serve: " << error.what() << '\n';
    return 1;
  }
}
