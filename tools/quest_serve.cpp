// quest_serve — the long-lived optimization service: a line-delimited
// JSON protocol over a fixed worker pool, with shared instance
// registration, per-request budgets, mid-flight cancellation, streamed
// incumbents, and a cross-request plan cache.
//
// Two transports (see quest/serve/transport.hpp for the stack layering):
//
//   quest_serve --workers 8                 # stdin/stdout pipe (default)
//   quest_serve --tcp-port 7333             # TCP, many concurrent clients
//   quest_serve --tcp-port 0                # TCP on an ephemeral port
//
// A session (one op per line in, one event per line out):
//
//   {"op":"register","name":"prod","instance":{...}}
//   {"op":"optimize","id":"r1","instance":"prod","optimizer":"bnb",
//    "budget":{"deadline_ms":500},"stream":true}
//   {"op":"optimize_batch","id":"b1","requests":[{...},{...}]}
//   {"op":"cancel","id":"r1"}
//   {"op":"stats"}
//   {"op":"shutdown"}
//
// In TCP mode the first stdout line is {"event":"listening","port":N}
// (N is the bound port — useful with --tcp-port 0), request ids are
// scoped per connection, a disconnect cancels that client's in-flight
// work, and overload is load-shed with typed "overloaded" errors: at
// the connection limit (--max-connections) and at the admission queue
// cap (--queue-cap). The process exits 0 after any client's shutdown op.
//
// In stdio mode the process exits 0 after a shutdown op — or on EOF,
// which cancels anything still in flight (every admitted request still
// receives its result event) and shuts down cleanly. Protocol errors
// never kill the session; they come back as {"event":"error",...} lines.
//
// Durable state (quest/store): with --snapshot-path the process warm
// boots — restores the instance store and both plan-cache tiers from the
// snapshot (refusing stale or corrupt records entry by entry) *before*
// the transport accepts — then snapshots write-behind every
// --snapshot-interval-ms while serving, and flushes a final snapshot on
// shutdown. The stats event grows durability counters (snapshot_writes,
// snapshot_bytes, warm_boot_entries, stale_refused) when persistence is
// on.
//
// SIGTERM and SIGINT trigger the same graceful path as a shutdown op:
// stop accepting, cancel/drain in-flight work (every admitted request
// still gets its result), flush the final snapshot, exit 0.

#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <csignal>
#include <iostream>
#include <memory>
#include <string>
#include <thread>

#include "quest/common/cli.hpp"
#include "quest/serve/server.hpp"
#include "quest/serve/session.hpp"
#include "quest/serve/tcp_transport.hpp"
#include "quest/serve/transport.hpp"
#include "quest/store/snapshot.hpp"
#include "quest/store/snapshot_writer.hpp"

namespace {

// Self-pipe: the handler does the only async-signal-safe thing (one
// write); a watcher thread turns the byte into a transport stop on an
// ordinary thread. Installed without SA_RESTART so stdio's blocking
// stdin read returns with EINTR instead of resuming.
int g_signal_pipe[2] = {-1, -1};

extern "C" void on_terminate_signal(int) {
  const char byte = 's';
  (void)!::write(g_signal_pipe[1], &byte, 1);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace quest;
  try {
    Cli cli("quest_serve",
            "serve concurrent optimize requests over line-delimited JSON "
            "(stdin -> stdout, or TCP with --tcp-port)");
    auto& workers =
        cli.add_int("workers", 4, "worker threads draining the queue");
    auto& cache_capacity =
        cli.add_int("cache-capacity", 256, "plan cache entries");
    auto& no_cache =
        cli.add_bool("no-cache", false, "disable the plan cache entirely");
    auto& engine_threads = cli.add_int(
        "engine-threads", 0,
        "per-job thread cap for parallel engines (0 = hardware / workers)");
    auto& tcp_port = cli.add_int(
        "tcp-port", -1,
        "serve TCP on this port instead of stdin/stdout (0 = ephemeral; "
        "the bound port is announced as a \"listening\" event)");
    auto& bind_address =
        cli.add_string("bind", "127.0.0.1", "TCP listen address");
    auto& max_connections = cli.add_int(
        "max-connections", 1024,
        "TCP connection limit; excess connects are refused with a typed "
        "\"overloaded\" error");
    auto& queue_cap = cli.add_int(
        "queue-cap", -1,
        "admission queue bound; deeper optimize requests are load-shed "
        "with a typed \"overloaded\" error (0 = unbounded, -1 = auto: "
        "unbounded for stdio, 1024 for TCP)");
    auto& max_line_bytes = cli.add_int(
        "max-line-bytes", 1 << 20,
        "longest accepted request line; longer lines get a typed "
        "\"line-overflow\" error");
    auto& write_buffer_bytes = cli.add_int(
        "write-buffer-bytes", 1 << 20,
        "per-connection outbound buffer cap; a connection above it stops "
        "being read until the client drains (backpressure)");
    auto& snapshot_path = cli.add_string(
        "snapshot-path", "",
        "durable state file: warm boot from it before accepting, snapshot "
        "to it write-behind while serving, flush it on shutdown (empty = "
        "no persistence)");
    auto& snapshot_interval_ms = cli.add_int(
        "snapshot-interval-ms", 5000,
        "write-behind snapshot cadence; changed state reaches disk within "
        "one interval (and always on clean shutdown)");
    cli.parse(argc, argv);
    if (workers.value < 1) throw Parse_error("--workers must be >= 1");
    if (cache_capacity.value < 1) {
      throw Parse_error("--cache-capacity must be >= 1");
    }
    if (engine_threads.value < 0) {
      throw Parse_error("--engine-threads must be >= 0");
    }
    if (tcp_port.value < -1 || tcp_port.value > 65535) {
      throw Parse_error("--tcp-port must be in [0, 65535] (or -1 for stdio)");
    }
    if (max_connections.value < 1) {
      throw Parse_error("--max-connections must be >= 1");
    }
    if (queue_cap.value < -1) {
      throw Parse_error("--queue-cap must be >= 0 (or -1 for auto)");
    }
    if (max_line_bytes.value < 2) {
      throw Parse_error("--max-line-bytes must be >= 2");
    }
    if (write_buffer_bytes.value < 1024) {
      throw Parse_error("--write-buffer-bytes must be >= 1024");
    }
    if (snapshot_interval_ms.value < 1) {
      throw Parse_error("--snapshot-interval-ms must be >= 1");
    }
    const bool tcp = tcp_port.value >= 0;
    const bool persist = !snapshot_path.value.empty();

    serve::Server_options options;
    options.workers = static_cast<std::size_t>(workers.value);
    options.cache_capacity = static_cast<std::size_t>(cache_capacity.value);
    options.enable_cache = !no_cache.value;
    options.engine_threads = static_cast<std::size_t>(engine_threads.value);
    // Auto queue cap: the single stdio pipe is its own backpressure
    // (unbounded keeps the original behavior, and its event stream,
    // unchanged); a socket fan-in needs a bound to stay load-shedding
    // rather than memory-ballooning.
    options.queue_cap = queue_cap.value >= 0
                            ? static_cast<std::size_t>(queue_cap.value)
                            : (tcp ? 1024 : 0);
    std::shared_ptr<serve::Durability_counters> counters;
    if (persist) {
      counters = std::make_shared<serve::Durability_counters>();
      options.durability = counters;
    }

    serve::Server server(options);

    // Warm boot + write-behind attach happen before the transport exists,
    // so the first accepted request already sees the restored store and
    // cache tiers.
    std::unique_ptr<store::Snapshot_writer> writer;
    if (persist) {
      const store::Load_report report = store::load_snapshot(
          snapshot_path.value, server.instances(), server.cache());
      counters->warm_boot_entries.fetch_add(report.loaded(),
                                            std::memory_order_relaxed);
      counters->stale_refused.fetch_add(report.stale_refused,
                                        std::memory_order_relaxed);
      store::Snapshot_writer_options writer_options;
      writer_options.path = snapshot_path.value;
      writer_options.interval =
          std::chrono::milliseconds(snapshot_interval_ms.value);
      writer = std::make_unique<store::Snapshot_writer>(
          writer_options, server.instances(), server.cache(), counters);
    }

    serve::Session_options session_options;
    session_options.max_line_bytes =
        static_cast<std::size_t>(max_line_bytes.value);
    session_options.close_session_on_disconnect = tcp;

    std::unique_ptr<serve::Transport> transport;
    if (tcp) {
      serve::Tcp_options tcp_options;
      tcp_options.bind_address = bind_address.value;
      tcp_options.port = static_cast<std::uint16_t>(tcp_port.value);
      tcp_options.max_connections =
          static_cast<std::size_t>(max_connections.value);
      tcp_options.write_buffer_cap =
          static_cast<std::size_t>(write_buffer_bytes.value);
      auto tcp_transport = std::make_unique<serve::Tcp_transport>(tcp_options);
      io::Json listening;
      listening.set("event", io::Json("listening"));
      listening.set("port", io::Json(tcp_transport->port()));
      std::cout << listening.dump() << std::endl;
      transport = std::move(tcp_transport);
    } else {
      transport = std::make_unique<serve::Stdio_transport>();
    }

    if (::pipe(g_signal_pipe) != 0) {
      throw Error("quest_serve: cannot create the signal pipe");
    }
    struct sigaction action {};
    action.sa_handler = on_terminate_signal;
    sigemptyset(&action.sa_mask);
    action.sa_flags = 0;
    ::sigaction(SIGTERM, &action, nullptr);
    ::sigaction(SIGINT, &action, nullptr);
    std::thread signal_watcher([&transport] {
      for (;;) {
        char byte = 0;
        const ssize_t n = ::read(g_signal_pipe[0], &byte, 1);
        if (n < 0 && errno == EINTR) continue;
        if (n <= 0 || byte == 'q') break;
        transport->stop();
      }
    });

    serve::Session_manager sessions(server, *transport, session_options);
    sessions.serve();
    {
      const char quit = 'q';
      (void)!::write(g_signal_pipe[1], &quit, 1);
    }
    signal_watcher.join();
    // Transport gone (shutdown op, SIGTERM/SIGINT, or stdio EOF): cancel
    // in-flight work and drain. After a shutdown op this is a no-op
    // (already drained); on EOF it makes "clean exit" the documented
    // behavior rather than a side effect.
    server.shutdown();
    // Final flush: the post-drain state (results just cached, instances
    // just registered) reaches disk before exit.
    if (writer != nullptr) writer->stop();
    return 0;
  } catch (const quest::Parse_error& error) {
    std::cerr << "quest_serve: " << error.what() << '\n';
    return 2;
  } catch (const quest::Error& error) {
    std::cerr << "quest_serve: " << error.what() << '\n';
    return 1;
  }
}
